package synth

import (
	"math/rand"
	"testing"
	"time"

	"plotters/internal/flow"
	"plotters/internal/simnet"
)

func TestInternalSubnets(t *testing.T) {
	if !IsInternal(flow.MakeIP(128, 2, 4, 5)) || !IsInternal(flow.MakeIP(128, 237, 0, 1)) {
		t.Error("campus addresses not recognized as internal")
	}
	if IsInternal(flow.MakeIP(128, 3, 0, 1)) || IsInternal(flow.MakeIP(8, 8, 8, 8)) {
		t.Error("external address reported internal")
	}
	if len(InternalSubnets()) != 2 {
		t.Error("expected two campus subnets")
	}
}

func TestCollectionWindow(t *testing.T) {
	day := time.Date(2007, time.November, 5, 13, 45, 0, 0, time.UTC)
	w := CollectionWindow(day)
	if w.From.Hour() != 9 || w.To.Hour() != 15 {
		t.Errorf("window = %v..%v, want 9am..3pm", w.From, w.To)
	}
	if w.Duration() != 6*time.Hour {
		t.Errorf("duration = %v", w.Duration())
	}
	if !CollectionStart(day).Equal(w.From) {
		t.Error("CollectionStart disagrees with window")
	}
}

func TestAddrPlan(t *testing.T) {
	var plan AddrPlan
	seen := make(map[flow.IP]bool)
	inA, inB := 0, 0
	for i := 0; i < 200; i++ {
		ip := plan.NextInternal()
		if seen[ip] {
			t.Fatalf("duplicate address %v", ip)
		}
		seen[ip] = true
		if !IsInternal(ip) {
			t.Fatalf("allocated non-internal address %v", ip)
		}
		if CampusNetA.Contains(ip) {
			inA++
		} else {
			inB++
		}
	}
	if inA == 0 || inB == 0 {
		t.Errorf("allocation not spread across subnets: %d/%d", inA, inB)
	}
}

func TestPortAlloc(t *testing.T) {
	var ports PortAlloc
	for i := 0; i < 20000; i++ {
		p := ports.Next()
		if p < 49152 {
			t.Fatalf("port %d below ephemeral range", p)
		}
	}
}

func simAt(t *testing.T) *simnet.Simulator {
	t.Helper()
	return simnet.New(time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC), 1)
}

func TestEmitFlowSuccess(t *testing.T) {
	sim := simAt(t)
	EmitFlow(sim, FlowSpec{
		Src: 1, Dst: 2, SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
		Duration: time.Second, ReqBytes: 1400, RspBytes: 7000,
		Success: true, Payload: []byte("GET /"),
	})
	records := sim.Records()
	if len(records) != 1 {
		t.Fatal("no record emitted")
	}
	r := records[0]
	if r.State != flow.StateEstablished {
		t.Error("state not established")
	}
	// Wire bytes exceed payload bytes (headers added).
	if r.SrcBytes <= 1400 || r.DstBytes <= 7000 {
		t.Errorf("wire bytes = %d/%d, want > payload", r.SrcBytes, r.DstBytes)
	}
	if r.SrcPkts == 0 || r.DstPkts == 0 {
		t.Error("zero packets")
	}
	if string(r.Payload) != "GET /" {
		t.Errorf("payload = %q", r.Payload)
	}
	if r.Duration() != time.Second {
		t.Errorf("duration = %v", r.Duration())
	}
}

func TestEmitFlowFailedTCP(t *testing.T) {
	sim := simAt(t)
	EmitFlow(sim, FlowSpec{
		Src: 1, Dst: 2, Proto: flow.TCP,
		Duration: time.Minute, ReqBytes: 5000, RspBytes: 9000,
		Success: false, Payload: []byte("should vanish"),
	})
	r := sim.Records()[0]
	if !r.Failed() {
		t.Fatal("state not failed")
	}
	if r.SrcBytes != 3*60 || r.SrcPkts != 3 {
		t.Errorf("failed TCP = %d bytes %d pkts, want 180/3 (SYN retries)", r.SrcBytes, r.SrcPkts)
	}
	if r.DstBytes != 0 || r.DstPkts != 0 {
		t.Error("failed flow has response traffic")
	}
	if len(r.Payload) != 0 {
		t.Error("failed flow kept payload")
	}
	if r.Duration() != 3*time.Second {
		t.Errorf("failed flow duration = %v, want timeout", r.Duration())
	}
}

func TestEmitFlowFailedUDP(t *testing.T) {
	sim := simAt(t)
	EmitFlow(sim, FlowSpec{
		Src: 1, Dst: 2, Proto: flow.UDP,
		ReqBytes: 5000, Success: false,
	})
	r := sim.Records()[0]
	if r.SrcPkts != 1 {
		t.Errorf("failed UDP pkts = %d, want 1", r.SrcPkts)
	}
	// Payload capped at 128 plus one UDP header.
	if r.SrcBytes != 128+28 {
		t.Errorf("failed UDP bytes = %d, want 156", r.SrcBytes)
	}
}

func TestEmitFlowDefaultDuration(t *testing.T) {
	sim := simAt(t)
	EmitFlow(sim, FlowSpec{Src: 1, Dst: 2, Proto: flow.UDP, ReqBytes: 10, Success: true})
	if d := sim.Records()[0].Duration(); d <= 0 {
		t.Errorf("default duration = %v", d)
	}
}

func TestEmitFlowPayloadTruncated(t *testing.T) {
	sim := simAt(t)
	big := make([]byte, 200)
	EmitFlow(sim, FlowSpec{Src: 1, Dst: 2, Proto: flow.TCP, ReqBytes: 10, Success: true, Payload: big, Duration: time.Second})
	if got := len(sim.Records()[0].Payload); got != flow.MaxPayload {
		t.Errorf("payload length = %d, want %d", got, flow.MaxPayload)
	}
}

func TestExternalIPPool(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pool := NewExternalIPPool(rng, 500, 1.3)
	if pool.Size() != 500 {
		t.Fatalf("size = %d", pool.Size())
	}
	counts := make(map[flow.IP]int)
	for i := 0; i < 20000; i++ {
		ip := pool.Pick()
		if IsInternal(ip) {
			t.Fatal("pool handed out internal address")
		}
		first, _, _, _ := ip.Octets()
		if first == 0 || first == 10 || first == 127 || first >= 224 {
			t.Fatalf("pool handed out reserved address %v", ip)
		}
		counts[ip]++
	}
	// Zipf skew: the most popular address dominates a uniform share.
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount < 3*(20000/500) {
		t.Errorf("popularity not skewed: max count %d", maxCount)
	}
	// Uniform picks also stay in the pool.
	for i := 0; i < 100; i++ {
		if IsInternal(pool.PickUniform(rng)) {
			t.Fatal("uniform pick internal")
		}
	}
}
