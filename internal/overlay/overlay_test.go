package overlay

import (
	"math/rand"
	"testing"
	"time"

	"plotters/internal/flow"
)

func t0() time.Time {
	return time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
}

func rec(src, dst flow.IP, at time.Time, state flow.ConnState) flow.Record {
	return flow.Record{
		Src: src, Dst: dst, SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
		Start: at, End: at.Add(time.Second),
		SrcPkts: 1, DstPkts: 1, SrcBytes: 100, DstBytes: 100, State: state,
	}
}

func TestActiveHosts(t *testing.T) {
	internal := flow.MustParseSubnet("128.2.0.0/16")
	records := []flow.Record{
		rec(flow.MakeIP(128, 2, 0, 1), 9, t0(), flow.StateEstablished),
		rec(flow.MakeIP(128, 2, 0, 2), 9, t0(), flow.StateFailed),     // only failed: not active
		rec(flow.MakeIP(10, 0, 0, 1), 9, t0(), flow.StateEstablished), // external
		rec(flow.MakeIP(128, 2, 0, 3), 9, t0(), flow.StateEstablished),
		rec(flow.MakeIP(128, 2, 0, 1), 9, t0(), flow.StateEstablished), // duplicate
	}
	hosts := ActiveHosts(records, internal.Contains)
	if len(hosts) != 2 {
		t.Fatalf("active hosts = %v", hosts)
	}
	if hosts[0] != flow.MakeIP(128, 2, 0, 1) || hosts[1] != flow.MakeIP(128, 2, 0, 3) {
		t.Errorf("hosts = %v (want sorted)", hosts)
	}
	// Nil filter counts everyone.
	all := ActiveHosts(records, nil)
	if len(all) != 3 {
		t.Errorf("unfiltered hosts = %v", all)
	}
}

func TestAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bots := []flow.IP{1, 2, 3}
	candidates := []flow.IP{10, 11, 12, 13, 14}
	a, err := Assign(rng, bots, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("assignment = %v", a)
	}
	seen := make(map[flow.IP]bool)
	for _, host := range a {
		if seen[host] {
			t.Fatal("two bots assigned to same host")
		}
		seen[host] = true
	}
	targets := a.Targets()
	if len(targets) != 3 {
		t.Errorf("targets = %v", targets)
	}
	// Not enough candidates.
	if _, err := Assign(rng, bots, candidates[:2]); err == nil {
		t.Error("expected error with too few candidates")
	}
}

func TestRetime(t *testing.T) {
	traceDay := time.Date(2007, time.November, 1, 3, 30, 0, 0, time.UTC)
	records := []flow.Record{
		rec(1, 2, traceDay, flow.StateEstablished),
		rec(1, 2, traceDay.Add(5*time.Hour), flow.StateEstablished),
	}
	target := time.Date(2007, time.November, 9, 0, 0, 0, 0, time.UTC)
	out := Retime(records, target)
	if len(out) != 2 {
		t.Fatal("length changed")
	}
	want := time.Date(2007, time.November, 9, 3, 30, 0, 0, time.UTC)
	if !out[0].Start.Equal(want) {
		t.Errorf("retimed start = %v, want %v", out[0].Start, want)
	}
	if got := out[1].Start.Sub(out[0].Start); got != 5*time.Hour {
		t.Errorf("relative offset = %v", got)
	}
	// Input untouched.
	if !records[0].Start.Equal(traceDay) {
		t.Error("input mutated")
	}
	if Retime(nil, target) != nil {
		t.Error("empty input should return nil")
	}
}

func TestRewrite(t *testing.T) {
	records := []flow.Record{
		rec(1, 100, t0(), flow.StateEstablished),
		rec(2, 100, t0(), flow.StateEstablished),
	}
	out := Rewrite(records, Assignment{1: 50})
	if len(out) != 1 || out[0].Src != 50 || out[0].Dst != 100 {
		t.Errorf("rewrite = %v", out)
	}
	if records[0].Src != 1 {
		t.Error("input mutated")
	}
}

func TestMerge(t *testing.T) {
	a := []flow.Record{rec(1, 2, t0().Add(time.Minute), flow.StateEstablished)}
	b := []flow.Record{rec(3, 4, t0(), flow.StateEstablished)}
	out := Merge(a, b)
	if len(out) != 2 || out[0].Src != 3 || out[1].Src != 1 {
		t.Errorf("merge order wrong: %v", out)
	}
}

func TestOverlayEndToEnd(t *testing.T) {
	internal := flow.MustParseSubnet("128.2.0.0/16")
	window := flow.Window{From: t0(), To: t0().Add(6 * time.Hour)}

	// Base: four active internal hosts.
	var base []flow.Record
	for i := 1; i <= 4; i++ {
		base = append(base, rec(flow.MakeIP(128, 2, 0, byte(i)), 9, t0().Add(time.Duration(i)*time.Minute), flow.StateEstablished))
	}
	// A bot trace from a different day, 2 bots, flows inside and outside
	// the window's hours.
	traceDay := time.Date(2007, time.October, 20, 0, 0, 0, 0, time.UTC)
	trace := Trace{
		Label: "storm",
		Bots:  []flow.IP{flow.MakeIP(198, 18, 0, 1), flow.MakeIP(198, 18, 0, 2)},
		Records: []flow.Record{
			rec(flow.MakeIP(198, 18, 0, 1), 77, traceDay.Add(10*time.Hour), flow.StateEstablished),
			rec(flow.MakeIP(198, 18, 0, 2), 78, traceDay.Add(11*time.Hour), flow.StateFailed),
			rec(flow.MakeIP(198, 18, 0, 1), 77, traceDay.Add(2*time.Hour), flow.StateEstablished), // before window: dropped
		},
	}
	rng := rand.New(rand.NewSource(2))
	ov, err := Overlay(rng, base, window, internal.Contains, trace)
	if err != nil {
		t.Fatal(err)
	}
	// 4 base + 2 in-window bot flows.
	if len(ov.Records) != 6 {
		t.Fatalf("records = %d, want 6", len(ov.Records))
	}
	if len(ov.BotHosts) != 2 {
		t.Fatalf("bot hosts = %v", ov.BotHosts)
	}
	for host, label := range ov.BotHosts {
		if !internal.Contains(host) {
			t.Errorf("bot assigned to non-internal host %v", host)
		}
		if label != "storm" {
			t.Errorf("label = %q", label)
		}
	}
	totalBotFlows := 0
	for _, n := range ov.BotFlows {
		totalBotFlows += n
	}
	if totalBotFlows != 2 {
		t.Errorf("bot flows = %d, want 2", totalBotFlows)
	}
	// Records are time-sorted.
	for i := 1; i < len(ov.Records); i++ {
		if ov.Records[i].Start.Before(ov.Records[i-1].Start) {
			t.Fatal("records not sorted")
		}
	}
}

func TestOverlayTooManyBots(t *testing.T) {
	internal := flow.MustParseSubnet("128.2.0.0/16")
	window := flow.Window{From: t0(), To: t0().Add(time.Hour)}
	base := []flow.Record{rec(flow.MakeIP(128, 2, 0, 1), 9, t0(), flow.StateEstablished)}
	trace := Trace{Label: "x", Bots: []flow.IP{1, 2}}
	rng := rand.New(rand.NewSource(3))
	if _, err := Overlay(rng, base, window, internal.Contains, trace); err == nil {
		t.Error("expected error: more bots than active hosts")
	}
}

func TestOverlayDistinctAcrossTraces(t *testing.T) {
	internal := flow.MustParseSubnet("128.2.0.0/16")
	window := flow.Window{From: t0(), To: t0().Add(time.Hour)}
	var base []flow.Record
	for i := 1; i <= 10; i++ {
		base = append(base, rec(flow.MakeIP(128, 2, 0, byte(i)), 9, t0(), flow.StateEstablished))
	}
	t1 := Trace{Label: "a", Bots: []flow.IP{1, 2, 3}}
	t2 := Trace{Label: "b", Bots: []flow.IP{4, 5, 6}}
	rng := rand.New(rand.NewSource(4))
	ov, err := Overlay(rng, base, window, internal.Contains, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ov.BotHosts) != 6 {
		t.Fatalf("hosts carrying bots = %d, want 6 (no host carries two bots)", len(ov.BotHosts))
	}
}
