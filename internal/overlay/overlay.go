// Package overlay implements the paper's evaluation methodology (§V):
// honeynet bot traces are overlaid onto the campus traffic by assigning
// each bot to a randomly selected active internal host, rewriting the
// bot's flows to originate from that host, and merging them with the
// host's own traffic. The detection pipeline then sees hosts that exhibit
// their normal connection patterns *plus* Plotter activity.
package overlay

import (
	"fmt"
	"math/rand"
	"time"

	"plotters/internal/flow"
)

// ActiveHosts returns the internal hosts that initiated at least one
// successful flow in the records — the paper's pool of overlay targets.
func ActiveHosts(records []flow.Record, internal func(flow.IP) bool) []flow.IP {
	seen := make(map[flow.IP]bool)
	for i := range records {
		r := &records[i]
		if r.Failed() {
			continue
		}
		if internal != nil && !internal(r.Src) {
			continue
		}
		seen[r.Src] = true
	}
	hosts := make([]flow.IP, 0, len(seen))
	for h := range seen {
		hosts = append(hosts, h)
	}
	// Deterministic order before shuffling so assignment depends only on
	// the caller's RNG.
	sortIPs(hosts)
	return hosts
}

func sortIPs(hosts []flow.IP) {
	for i := 1; i < len(hosts); i++ {
		for j := i; j > 0 && hosts[j] < hosts[j-1]; j-- {
			hosts[j], hosts[j-1] = hosts[j-1], hosts[j]
		}
	}
}

// Assignment maps bot trace addresses to the internal hosts that will
// appear to run them.
type Assignment map[flow.IP]flow.IP

// Assign maps each bot to a distinct host drawn uniformly from
// candidates. It fails if there are fewer candidates than bots.
func Assign(rng *rand.Rand, bots []flow.IP, candidates []flow.IP) (Assignment, error) {
	if len(candidates) < len(bots) {
		return nil, fmt.Errorf("overlay: %d bots but only %d candidate hosts", len(bots), len(candidates))
	}
	perm := rng.Perm(len(candidates))
	out := make(Assignment, len(bots))
	for i, b := range bots {
		out[b] = candidates[perm[i]]
	}
	return out, nil
}

// Targets returns the assigned internal hosts.
func (a Assignment) Targets() []flow.IP {
	out := make([]flow.IP, 0, len(a))
	for _, h := range a {
		out = append(out, h)
	}
	sortIPs(out)
	return out
}

// Retime shifts records by whole days so the trace lands on day (the
// trace's first record defines its origin day). The input is not
// modified.
func Retime(records []flow.Record, day time.Time) []flow.Record {
	if len(records) == 0 {
		return nil
	}
	first := records[0].Start
	for i := range records {
		if records[i].Start.Before(first) {
			first = records[i].Start
		}
	}
	from := time.Date(first.Year(), first.Month(), first.Day(), 0, 0, 0, 0, time.UTC)
	to := time.Date(day.Year(), day.Month(), day.Day(), 0, 0, 0, 0, time.UTC)
	delta := to.Sub(from)
	out := make([]flow.Record, len(records))
	for i, r := range records {
		r.Start = r.Start.Add(delta)
		r.End = r.End.Add(delta)
		out[i] = r
	}
	return out
}

// Rewrite re-addresses records according to the assignment: outbound bot
// flows (bot as source) are re-sourced to the assigned host, inbound bot
// flows (bot as destination — peers connecting to the bot) are
// re-destined. Records touching no assigned bot address are dropped. The
// input is not modified.
func Rewrite(records []flow.Record, assignment Assignment) []flow.Record {
	out := make([]flow.Record, 0, len(records))
	for _, r := range records {
		matched := false
		if host, ok := assignment[r.Src]; ok {
			r.Src = host
			matched = true
		}
		if host, ok := assignment[r.Dst]; ok {
			r.Dst = host
			matched = true
		}
		if !matched {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Merge combines record sets into one time-sorted slice.
func Merge(sets ...[]flow.Record) []flow.Record {
	var total int
	for _, s := range sets {
		total += len(s)
	}
	out := make([]flow.Record, 0, total)
	for _, s := range sets {
		out = append(out, s...)
	}
	flow.SortByStart(out)
	return out
}

// Overlaid is the result of overlaying one or more bot traces onto a
// day's records.
type Overlaid struct {
	// Records is the merged, window-filtered, time-sorted traffic.
	Records []flow.Record
	// BotHosts maps each internal host carrying bot traffic to the trace
	// label it carries (e.g. "storm").
	BotHosts map[flow.IP]string
	// BotFlows counts, per carrying host, the bot-trace flows that landed
	// inside the window (the host's own traffic excluded) — the quantity
	// behind the paper's Figure 10.
	BotFlows map[flow.IP]int
}

// Trace pairs a bot trace's records with a label for scoring.
type Trace struct {
	Label   string
	Records []flow.Record
	Bots    []flow.IP
}

// Overlay assigns every trace's bots to distinct active hosts, retimes
// the traces onto the window's day, rewrites sources, merges everything,
// and filters to the window. Distinctness holds across traces too: a
// host carries at most one bot.
func Overlay(rng *rand.Rand, base []flow.Record, window flow.Window, internal func(flow.IP) bool, traces ...Trace) (*Overlaid, error) {
	candidates := ActiveHosts(base, internal)
	var totalBots int
	for _, t := range traces {
		totalBots += len(t.Bots)
	}
	if len(candidates) < totalBots {
		return nil, fmt.Errorf("overlay: %d bots across traces but only %d active hosts", totalBots, len(candidates))
	}
	perm := rng.Perm(len(candidates))
	next := 0

	merged := [][]flow.Record{base}
	botHosts := make(map[flow.IP]string, totalBots)
	botFlows := make(map[flow.IP]int, totalBots)
	for _, t := range traces {
		assignment := make(Assignment, len(t.Bots))
		for _, b := range t.Bots {
			host := candidates[perm[next]]
			next++
			assignment[b] = host
			botHosts[host] = t.Label
		}
		retimed := Retime(t.Records, window.From)
		rewritten := window.Filter(Rewrite(retimed, assignment))
		for i := range rewritten {
			if _, ok := botHosts[rewritten[i].Src]; ok {
				botFlows[rewritten[i].Src]++
			} else if _, ok := botHosts[rewritten[i].Dst]; ok {
				botFlows[rewritten[i].Dst]++
			}
		}
		merged = append(merged, rewritten)
	}
	all := Merge(merged...)
	return &Overlaid{Records: window.Filter(all), BotHosts: botHosts, BotFlows: botFlows}, nil
}
