//go:build linux

package ingest

import (
	"bytes"
	"testing"
	"time"
)

func TestNewBatchReaderSelectsRecvmmsg(t *testing.T) {
	recv, _ := newLoopbackPair(t)
	if _, ok := NewBatchReader(recv, 8).(*mmsgReader); !ok {
		t.Fatal("batch > 1 on linux did not select the recvmmsg reader")
	}
	if _, ok := NewBatchReader(recv, 1).(*singleReader); !ok {
		t.Fatal("batch = 1 did not select the portable reader")
	}
}

// TestMMsgReaderTruncation checks the kernel's MSG_TRUNC signal reaches
// Buf.Truncated: a datagram longer than the ring buffer is cut and
// flagged, and a following well-sized datagram is clean.
func TestMMsgReaderTruncation(t *testing.T) {
	recv, send := newLoopbackPair(t)
	br := newMMsgReader(recv, 4)
	if br == nil {
		t.Fatal("newMMsgReader returned nil for a UDP socket")
	}
	ring := NewRing(4, 32)

	big := bytes.Repeat([]byte{0xCC}, 100) // exceeds the 32-byte buffers
	small := []byte("fits-fine")
	for _, p := range [][]byte{big, small} {
		if _, err := send.Write(p); err != nil {
			t.Fatalf("send: %v", err)
		}
	}

	var got []*Buf
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < 2 && time.Now().Before(deadline) {
		bufs := make([]*Buf, 0, 4)
		for {
			b, ok := ring.Get()
			if !ok {
				break
			}
			bufs = append(bufs, b)
		}
		n, err := br.ReadBatch(bufs)
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		got = append(got, bufs[:n]...)
		for _, b := range bufs[n:] {
			ring.Put(b)
		}
	}
	if len(got) != 2 {
		t.Fatalf("received %d datagrams, want 2", len(got))
	}
	if !got[0].Truncated {
		t.Error("oversized datagram not flagged truncated")
	}
	if len(got[0].Data) != 32 {
		t.Errorf("truncated datagram length %d, want buffer cap 32", len(got[0].Data))
	}
	if got[1].Truncated {
		t.Error("well-sized datagram flagged truncated")
	}
	if !bytes.Equal(got[1].Data, small) {
		t.Errorf("second datagram = %q, want %q", got[1].Data, small)
	}
	if got[0].Exporter != send.LocalAddr().String() {
		t.Errorf("exporter %q, want %q", got[0].Exporter, send.LocalAddr().String())
	}
}
