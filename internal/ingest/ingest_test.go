package ingest

import (
	"bytes"
	"math/rand"
	"net"
	"net/netip"
	"testing"
	"time"

	"plotters/internal/flow"
)

func TestRingLifecycle(t *testing.T) {
	r := NewRing(3, 64)
	if r.Size() != 3 || r.BufCap() != 64 || r.Idle() != 3 {
		t.Fatalf("fresh ring: size=%d cap=%d idle=%d", r.Size(), r.BufCap(), r.Idle())
	}
	var bufs []*Buf
	for i := 0; i < 3; i++ {
		b, ok := r.Get()
		if !ok {
			t.Fatalf("Get %d failed with buffers idle", i)
		}
		if len(b.Data) != 64 {
			t.Fatalf("Get returned %d-byte buffer, want full 64", len(b.Data))
		}
		bufs = append(bufs, b)
	}
	if _, ok := r.Get(); ok {
		t.Fatal("Get succeeded on an exhausted ring")
	}
	if r.Idle() != 0 {
		t.Fatalf("exhausted ring reports %d idle", r.Idle())
	}

	// A used buffer comes back from Get fully reset.
	bufs[0].Data = bufs[0].Data[:5]
	bufs[0].Exporter = "10.0.0.1:2055"
	bufs[0].Truncated = true
	r.Put(bufs[0])
	b, ok := r.Get()
	if !ok {
		t.Fatal("Get failed after Put")
	}
	if len(b.Data) != 64 || b.Exporter != "" || b.Truncated {
		t.Fatalf("recycled buffer not reset: len=%d exporter=%q trunc=%v",
			len(b.Data), b.Exporter, b.Truncated)
	}

	// Returning more buffers than the ring owns is a lifecycle bug.
	for _, b := range bufs {
		r.Put(b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-capacity Put did not panic")
		}
	}()
	r.Put(&Buf{Data: make([]byte, 64)})
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := netip.MustParseAddrPort("192.0.2.7:2055")
	s1 := in.Intern(a)
	s2 := in.Intern(a)
	if s1 != a.String() {
		t.Fatalf("Intern = %q, want %q", s1, a.String())
	}
	if s1 != s2 {
		t.Fatalf("repeated Intern disagreed: %q vs %q", s1, s2)
	}
	in.Intern(netip.MustParseAddrPort("[2001:db8::1]:9999"))
	if in.Len() != 2 {
		t.Fatalf("Len = %d after two distinct addresses", in.Len())
	}
}

// newLoopbackPair binds a UDP listener on localhost and a connected
// sender aimed at it.
func newLoopbackPair(t *testing.T) (*net.UDPConn, *net.UDPConn) {
	t.Helper()
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { recv.Close() })
	send, err := net.DialUDP("udp", nil, recv.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { send.Close() })
	return recv, send
}

// collectDatagrams reads until want datagrams arrive (or the deadline),
// exercising the reader with a full ring's worth of buffers per call.
func collectDatagrams(t *testing.T, br BatchReader, ring *Ring, want int) []*Buf {
	t.Helper()
	var out []*Buf
	deadline := time.Now().Add(5 * time.Second)
	for len(out) < want && time.Now().Before(deadline) {
		var bufs []*Buf
		for {
			b, ok := ring.Get()
			if !ok {
				break
			}
			bufs = append(bufs, b)
		}
		if len(bufs) == 0 {
			t.Fatal("ring exhausted before all datagrams arrived")
		}
		n, err := br.ReadBatch(bufs)
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		out = append(out, bufs[:n]...)
		for _, b := range bufs[n:] {
			ring.Put(b)
		}
	}
	if len(out) != want {
		t.Fatalf("received %d datagrams, want %d", len(out), want)
	}
	return out
}

func testReaderLoopback(t *testing.T, batch int) {
	recv, send := newLoopbackPair(t)
	br := NewBatchReader(recv, batch)
	ring := NewRing(8, 256)

	payloads := [][]byte{
		[]byte("alpha"),
		[]byte("bravo-longer-datagram"),
		bytes.Repeat([]byte{0xAB}, 200),
	}
	for _, p := range payloads {
		if _, err := send.Write(p); err != nil {
			t.Fatalf("send: %v", err)
		}
	}

	got := collectDatagrams(t, br, ring, len(payloads))
	wantExporter := send.LocalAddr().String()
	for i, b := range got {
		if !bytes.Equal(b.Data, payloads[i]) {
			t.Errorf("datagram %d: got %d bytes, want %d (%q)", i, len(b.Data), len(payloads[i]), payloads[i])
		}
		if b.Exporter != wantExporter {
			t.Errorf("datagram %d: exporter %q, want %q", i, b.Exporter, wantExporter)
		}
		if b.Truncated {
			t.Errorf("datagram %d: spuriously marked truncated", i)
		}
	}

}

func TestSingleReaderLoopback(t *testing.T) { testReaderLoopback(t, 1) }
func TestBatchReaderLoopback(t *testing.T)  { testReaderLoopback(t, 8) }

func TestRecordArena(t *testing.T) {
	var a RecordArena
	recs := a.Take()
	if len(recs) != 0 {
		t.Fatalf("fresh Take returned %d records", len(recs))
	}
	for i := 0; i < 40; i++ {
		recs = append(recs, flow.Record{SrcPort: uint16(i), Payload: []byte{1, 2, 3}})
	}
	a.Reset(recs)
	if a.Cap() < 40 {
		t.Fatalf("arena cap %d after absorbing 40 records", a.Cap())
	}
	grown := a.Cap()
	again := a.Take()
	if len(again) != 0 || cap(again) != grown {
		t.Fatalf("second Take: len=%d cap=%d, want 0/%d", len(again), cap(again), grown)
	}
	// Payloads must have been released on Reset.
	full := again[:40]
	for i := range full {
		if full[i].Payload != nil {
			t.Fatalf("record %d still pins its payload after Reset", i)
		}
	}
}

// randomRecords builds n content-diverse records from a fixed seed.
func randomRecords(rng *rand.Rand, n int) []flow.Record {
	base := time.Date(2026, 1, 10, 0, 0, 0, 0, time.UTC)
	recs := make([]flow.Record, n)
	for i := range recs {
		start := base.Add(time.Duration(rng.Intn(86400)) * time.Second)
		recs[i] = flow.Record{
			Src:      flow.IP(rng.Uint32()),
			Dst:      flow.IP(rng.Uint32()),
			SrcPort:  uint16(rng.Intn(65536)),
			DstPort:  uint16(rng.Intn(65536)),
			Proto:    flow.TCP,
			Start:    start,
			End:      start.Add(time.Duration(rng.Intn(300)) * time.Second),
			SrcPkts:  uint32(rng.Intn(1000)),
			DstPkts:  uint32(rng.Intn(1000)),
			SrcBytes: uint64(rng.Intn(1 << 20)),
			DstBytes: uint64(rng.Intn(1 << 20)),
			State:    flow.StateEstablished,
		}
	}
	return recs
}

// keptSet returns the fingerprints of the records s keeps.
func keptSet(s Sampler, recs []flow.Record) map[uint64]bool {
	kept := make(map[uint64]bool)
	for i := range recs {
		if s.Keep(&recs[i]) {
			kept[recs[i].Fingerprint(0)] = true
		}
	}
	return kept
}

func sameSet(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestSamplerDeterminism is the seq-stability property: the kept set is
// a pure function of (record content, N, seed), invariant under any
// reordering, splitting, or merging of the stream.
func TestSamplerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	recs := randomRecords(rng, 4000)
	s := Sampler{N: 16, Seed: 0x5EED}

	want := keptSet(s, recs)

	// Shuffled stream keeps the identical set.
	shuffled := append([]flow.Record(nil), recs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if !sameSet(want, keptSet(s, shuffled)) {
		t.Fatal("kept set changed under stream reordering")
	}

	// Arbitrary split (even random interleave) then merge keeps the set:
	// each half's keeps union to exactly the whole stream's keeps.
	var left, right []flow.Record
	for i := range recs {
		if rng.Intn(2) == 0 {
			left = append(left, recs[i])
		} else {
			right = append(right, recs[i])
		}
	}
	merged := keptSet(s, left)
	for k := range keptSet(s, right) {
		merged[k] = true
	}
	if !sameSet(want, merged) {
		t.Fatal("kept set changed under stream split/merge")
	}

	// A second sampler with the same parameters agrees record by record;
	// a different seed selects a materially different subset.
	if !sameSet(want, keptSet(Sampler{N: 16, Seed: 0x5EED}, recs)) {
		t.Fatal("identical sampler parameters disagreed")
	}
	other := keptSet(Sampler{N: 16, Seed: 0xD1FF}, recs)
	common := 0
	for k := range want {
		if other[k] {
			common++
		}
	}
	if common == len(want) {
		t.Fatal("different seeds kept the identical subset")
	}

	// The rate is close to 1/N for a content-diverse stream.
	got := float64(len(want)) / float64(len(recs))
	if got < 0.5/16 || got > 2.0/16 {
		t.Fatalf("keep rate %.4f implausibly far from 1/16", got)
	}
}

func TestSamplerDisabled(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(7)), 100)
	for _, n := range []uint64{0, 1} {
		s := Sampler{N: n, Seed: 99}
		if s.Enabled() {
			t.Fatalf("N=%d reports enabled", n)
		}
		for i := range recs {
			if !s.Keep(&recs[i]) {
				t.Fatalf("N=%d dropped a record", n)
			}
		}
		if got := s.Filter(recs); len(got) != len(recs) {
			t.Fatalf("N=%d Filter dropped records", n)
		}
	}
}

func TestSamplerFilterMatchesKeep(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(11)), 1000)
	s := Sampler{N: 4, Seed: 1}
	want := keptSet(s, recs)
	got := s.Filter(append([]flow.Record(nil), recs...))
	if len(got) != len(want) {
		t.Fatalf("Filter kept %d records, Keep kept %d", len(got), len(want))
	}
	for i := range got {
		if !want[got[i].Fingerprint(0)] {
			t.Fatalf("Filter kept record %d that Keep rejects", i)
		}
	}
}
