// Package ingest is the line-rate front half of the live collection
// path: everything between the UDP socket and the feature extractor
// that must run allocation-free at steady state for the collector to
// keep up with a border router's export stream (~1M+ records/s on one
// box, the ROADMAP's north star).
//
// It owns four mechanisms, composed by internal/collector:
//
//   - Ring: a fixed free-list of reusable packet buffers. Datagrams are
//     received into ring buffers, queued to the decode pool, and
//     returned after decode — the buffer population is bounded and
//     allocated once, so a traffic burst recycles memory instead of
//     growing it, and exhaustion is an explicit counted drop rather
//     than an allocation storm.
//
//   - BatchReader: the batched receive loop. On Linux, NewBatchReader
//     drains up to a configurable batch of datagrams per recvmmsg(2)
//     system call (raw syscall against the connection's pollable fd —
//     no cgo, no extra modules), amortizing syscall overhead across
//     the batch; everywhere else, or with batch ≤ 1, a portable
//     ReadFromUDPAddrPort loop provides identical semantics one
//     datagram at a time. Exporter source addresses are interned
//     (Interner), so the steady-state receive path performs zero
//     allocations per packet.
//
//   - RecordArena: a grow-only scratch slab of flow.Records reused
//     across decodes. Decoders append into an arena-backed slice;
//     after the handler returns, the arena is reset and the memory
//     reused. At steady state (capacity high-water reached) the decode
//     path allocates nothing per record.
//
//   - Sampler: a deterministic, hash-seeded 1-in-N flow-sampling
//     stage. The keep decision is a pure function of the record's
//     content fingerprint and the seed (flow.Record.Fingerprint), so
//     the same seed keeps exactly the same flow set no matter how the
//     stream is split, merged, reordered, or sharded — the property
//     that keeps sampled detection reproducible and lets the eval
//     suite measure exactly what sampling costs the detectors.
//
// The zero-allocation contract is verified, not aspirational: the
// pipeline benchmark (BenchmarkIngestPipeline) and the steady-state
// allocation test assert 0 allocs/op on the decode → sample → extract
// hot path, and CI gates on them.
package ingest
