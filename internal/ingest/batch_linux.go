//go:build linux

package ingest

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors the kernel's struct mmsghdr: one recvmmsg slot.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte // pad to the kernel's 8-byte struct alignment
}

// mmsgReader drains up to batch datagrams per recvmmsg(2) call against
// the connection's pollable file descriptor. The msghdr/iovec/sockaddr
// arrays are allocated once and rewired to the caller's ring buffers on
// every call, so the steady-state receive path performs one system call
// per batch and zero allocations per packet.
//
// The socket stays in the Go runtime's non-blocking mode: recvmmsg runs
// with MSG_DONTWAIT inside RawConn.Read, whose callback contract parks
// the goroutine on the netpoller when the call would block — batching
// without stealing the fd from the runtime, so deadlines and Close keep
// working.
type mmsgReader struct {
	raw    syscall.RawConn
	intern *Interner
	hdrs   []mmsghdr
	iovs   []syscall.Iovec
	names  [][syscall.SizeofSockaddrInet6]byte
}

// newMMsgReader prepares a recvmmsg reader, or nil when the connection
// exposes no raw descriptor (the caller falls back to single reads).
func newMMsgReader(conn *net.UDPConn, batch int) *mmsgReader {
	raw, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	return &mmsgReader{
		raw:    raw,
		intern: NewInterner(),
		hdrs:   make([]mmsghdr, batch),
		iovs:   make([]syscall.Iovec, batch),
		names:  make([][syscall.SizeofSockaddrInet6]byte, batch),
	}
}

// ReadBatch fills up to min(len(bufs), batch) buffers from one recvmmsg
// call, blocking (on the netpoller) until at least one datagram is
// ready.
func (r *mmsgReader) ReadBatch(bufs []*Buf) (int, error) {
	n := min(len(bufs), len(r.hdrs))
	if n == 0 {
		return 0, nil
	}
	for i := 0; i < n; i++ {
		b := bufs[i]
		r.iovs[i] = syscall.Iovec{Base: &b.Data[0]}
		r.iovs[i].SetLen(len(b.Data))
		h := &r.hdrs[i].hdr
		h.Name = &r.names[i][0]
		h.Namelen = uint32(len(r.names[i]))
		h.Iov = &r.iovs[i]
		h.Iovlen = 1 // untyped constant: assignable on every linux arch
		h.Flags = 0
		r.hdrs[i].len = 0
	}
	var got int
	var operr error
	err := r.raw.Read(func(fd uintptr) bool {
		rn, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&r.hdrs[0])), uintptr(n),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if errno != 0 {
			if errno == syscall.EAGAIN || errno == syscall.EWOULDBLOCK {
				return false // park on the netpoller until readable
			}
			operr = errno
			return true
		}
		got = int(rn)
		return true
	})
	if err != nil {
		return 0, err // closed socket or poll failure, as a net error
	}
	if operr != nil {
		return 0, operr
	}
	for i := 0; i < got; i++ {
		b := bufs[i]
		b.Data = b.Data[:min(int(r.hdrs[i].len), len(b.Data))]
		b.Truncated = r.hdrs[i].hdr.Flags&syscall.MSG_TRUNC != 0
		b.Exporter = r.intern.Intern(r.sockaddr(i))
	}
	return got, nil
}

// sockaddr decodes slot i's raw source address. Unknown families
// produce the zero AddrPort, which interns as ":0" rather than failing
// — the datagram still carries decodable payload.
func (r *mmsgReader) sockaddr(i int) netip.AddrPort {
	name := &r.names[i]
	switch int(r.hdrs[i].hdr.Namelen) {
	case syscall.SizeofSockaddrInet4:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(name))
		if sa.Family == syscall.AF_INET {
			port := uint16(name[2])<<8 | uint16(name[3])
			return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), port)
		}
	case syscall.SizeofSockaddrInet6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(name))
		if sa.Family == syscall.AF_INET6 {
			port := uint16(name[2])<<8 | uint16(name[3])
			return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), port)
		}
	}
	return netip.AddrPort{}
}
