package ingest

import (
	"net/netip"
	"sync"
)

// Interner maps exporter source addresses to canonical strings so the
// receive path formats each distinct exporter exactly once. A border
// deployment sees a handful of exporters send millions of packets;
// without interning, every datagram pays a String() allocation — with
// it, the steady-state lookup is a map hit on a comparable key and
// allocates nothing.
//
// Safe for concurrent use. The table only grows (one entry per distinct
// exporter address ever seen), which is bounded in practice by the
// exporter population, not the packet rate.
type Interner struct {
	mu sync.RWMutex
	m  map[netip.AddrPort]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[netip.AddrPort]string)}
}

// Intern returns the canonical string for addr, formatting it on first
// sight only.
func (in *Interner) Intern(addr netip.AddrPort) string {
	in.mu.RLock()
	s, ok := in.m[addr]
	in.mu.RUnlock()
	if ok {
		return s
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.m[addr]; ok {
		return s
	}
	s = addr.String()
	in.m[addr] = s
	return s
}

// Len returns how many distinct addresses have been interned.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.m)
}
