package ingest

import (
	"net"
)

// BatchReader receives datagrams from a socket into caller-provided
// ring buffers, as many per call as the platform allows. ReadBatch
// fills up to len(bufs) buffers — Data re-sliced to each datagram's
// length, Exporter interned — and returns how many arrived. It blocks
// until at least one datagram is available or the socket closes (the
// error is net.ErrClosed-wrapped then, like a plain read).
type BatchReader interface {
	ReadBatch(bufs []*Buf) (int, error)
}

// NewBatchReader returns the best BatchReader for the platform: with
// batch > 1 on Linux, a recvmmsg(2) reader that drains up to batch
// datagrams per system call; otherwise (other platforms, batch ≤ 1, or
// a socket that exposes no raw fd) the portable one-datagram fallback.
// The returned reader never allocates per packet at steady state.
func NewBatchReader(conn *net.UDPConn, batch int) BatchReader {
	if batch > 1 {
		if br := newMMsgReader(conn, batch); br != nil {
			return br
		}
	}
	return &singleReader{conn: conn, intern: NewInterner()}
}

// singleReader is the portable fallback: one datagram per call through
// the net runtime. ReadFromUDPAddrPort returns the peer as a value-type
// netip.AddrPort, so with the interner the loop is allocation-free.
type singleReader struct {
	conn   *net.UDPConn
	intern *Interner
}

// ReadBatch fills bufs[0] with the next datagram.
func (r *singleReader) ReadBatch(bufs []*Buf) (int, error) {
	if len(bufs) == 0 {
		return 0, nil
	}
	b := bufs[0]
	n, from, err := r.conn.ReadFromUDPAddrPort(b.Data)
	if err != nil {
		return 0, err
	}
	// A datagram longer than the buffer is silently cut by the runtime
	// here; the decoder's structural length checks catch it. Only the
	// recvmmsg path gets the kernel's explicit MSG_TRUNC signal.
	b.Data = b.Data[:n]
	b.Exporter = r.intern.Intern(from)
	return 1, nil
}
