package ingest

import "plotters/internal/flow"

// RecordArena is a grow-only scratch slab for decoded flow records.
// Decoders append into the slice returned by Take; when the batch has
// been handed to the extractor, Reset reclaims the memory for the next
// packet. Capacity ratchets up to the largest batch ever decoded and is
// never released, so once the high-water mark is reached the decode
// path appends without allocating.
//
// Not safe for concurrent use: each decode worker owns one arena.
type RecordArena struct {
	buf []flow.Record
}

// Take returns the arena's empty scratch slice, ready to append into.
func (a *RecordArena) Take() []flow.Record {
	return a.buf[:0]
}

// Reset absorbs the (possibly grown) slice back into the arena and
// clears record payloads so pooled memory never pins packet data.
func (a *RecordArena) Reset(recs []flow.Record) {
	for i := range recs {
		recs[i].Payload = nil
	}
	a.buf = recs[:0]
}

// Cap returns the arena's current capacity in records.
func (a *RecordArena) Cap() int { return cap(a.buf) }
