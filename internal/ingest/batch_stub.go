//go:build !linux

package ingest

import "net"

// newMMsgReader is the non-Linux stub: recvmmsg(2) is Linux-only, so
// NewBatchReader always falls back to the portable single-datagram
// reader here.
func newMMsgReader(conn *net.UDPConn, batch int) BatchReader {
	return nil
}
