package ingest

import "plotters/internal/flow"

// Sampler is the deterministic 1-in-N flow-sampling stage. The keep
// decision for a record is a pure function of the record's content
// fingerprint and the sampler's seed — no stream position, no RNG
// state — so two samplers with the same (N, Seed) keep exactly the
// same flow set regardless of how the stream is split across sockets,
// merged, reordered, or sharded. That sequence stability is what makes
// sampled detection reproducible: re-running a day at 1-in-16 keeps
// the same sixteenth of the flows every time, and the eval suite can
// attribute any detection change to sampling alone.
//
// A record is kept when fingerprint(seed) mod N == 0, which keeps an
// unbiased 1/N of a content-diverse stream (the fingerprint is a
// finalized 64-bit hash, so residues are uniform). N ≤ 1 keeps
// everything — the default, which leaves the live path bit-identical
// to an unsampled collector.
type Sampler struct {
	// N is the sampling divisor: keep 1 flow in N. Values ≤ 1 disable
	// sampling.
	N uint64
	// Seed perturbs the fingerprint so distinct samplers select
	// independent subsets.
	Seed uint64
}

// Keep reports whether r survives sampling.
func (s Sampler) Keep(r *flow.Record) bool {
	if s.N <= 1 {
		return true
	}
	return r.Fingerprint(s.Seed)%s.N == 0
}

// Enabled reports whether the sampler discards anything at all.
func (s Sampler) Enabled() bool { return s.N > 1 }

// Filter compacts recs in place to the kept subset and returns it. The
// discarded tail is zeroed so arena-backed slices do not pin payloads.
func (s Sampler) Filter(recs []flow.Record) []flow.Record {
	if !s.Enabled() {
		return recs
	}
	kept := recs[:0]
	for i := range recs {
		if s.Keep(&recs[i]) {
			kept = append(kept, recs[i])
		}
	}
	for i := len(kept); i < len(recs); i++ {
		recs[i].Payload = nil
	}
	return kept
}
