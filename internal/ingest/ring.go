package ingest

// Buf is one reusable datagram buffer cycling through a Ring. Data is
// the receive slab truncated to the datagram's length; Exporter is the
// interned source address of the packet. Reset restores the full
// capacity before the buffer is handed back to the receive loop.
type Buf struct {
	// Data holds the datagram. Receive paths fill Data[:cap(Data)] and
	// re-slice to the received length; consumers must not grow it.
	Data []byte
	// Exporter is the datagram's source address, interned so repeated
	// packets from the same exporter share one string.
	Exporter string
	// Truncated marks a datagram longer than the buffer: the kernel cut
	// it (MSG_TRUNC). Truncated packets never decode cleanly; the flag
	// lets the collector count them as malformed without parsing.
	Truncated bool
}

// reset restores the buffer to its full receive capacity.
func (b *Buf) reset() {
	b.Data = b.Data[:cap(b.Data)]
	b.Exporter = ""
	b.Truncated = false
}

// Ring is a fixed-size free-list of packet buffers: Get hands out an
// idle buffer, Put returns it. All buffers are allocated up front at a
// fixed capacity, so the receive path's memory footprint is bounded and
// constant — under overload Get fails (an explicit drop signal) instead
// of allocating. Safe for concurrent use: the receive loop Gets while
// decode workers Put.
type Ring struct {
	free   chan *Buf
	bufCap int
}

// NewRing allocates a ring of n buffers of bufCap bytes each.
func NewRing(n, bufCap int) *Ring {
	r := &Ring{free: make(chan *Buf, n), bufCap: bufCap}
	for i := 0; i < n; i++ {
		r.free <- &Buf{Data: make([]byte, bufCap)}
	}
	return r
}

// Size returns the ring's total buffer count.
func (r *Ring) Size() int { return cap(r.free) }

// BufCap returns the per-buffer capacity in bytes.
func (r *Ring) BufCap() int { return r.bufCap }

// Idle returns how many buffers are currently free.
func (r *Ring) Idle() int { return len(r.free) }

// Get returns an idle buffer, or (nil, false) when every buffer is in
// flight — the ring's backpressure signal. Never blocks and never
// allocates.
func (r *Ring) Get() (*Buf, bool) {
	select {
	case b := <-r.free:
		b.reset()
		return b, true
	default:
		return nil, false
	}
}

// Put returns a buffer to the free list. Putting more buffers than the
// ring owns panics — a double-Put is a lifecycle bug, not a condition
// to absorb.
func (r *Ring) Put(b *Buf) {
	select {
	case r.free <- b:
	default:
		panic("ingest: Ring.Put beyond capacity (buffer returned twice?)")
	}
}
