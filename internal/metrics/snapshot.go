package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of every instrument in a registry,
// shaped for serialization: counters and gauges as name→value maps,
// stages and histograms as name-sorted lists. A Snapshot of a nil
// registry is empty but valid.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]int64    `json:"gauges,omitempty"`
	Stages     []StageSnapshot     `json:"stages,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// StageSnapshot is one stage's accumulated timing.
type StageSnapshot struct {
	Name         string  `json:"name"`
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// HistogramBucket is one cumulative histogram bucket: Count
// observations were at most LESeconds.
type HistogramBucket struct {
	LESeconds float64 `json:"le_seconds"`
	Count     int64   `json:"count"`
}

// HistogramSnapshot is one duration histogram's state. Buckets are
// cumulative (Prometheus-style) and trailing all-inclusive buckets are
// trimmed.
type HistogramSnapshot struct {
	Name       string            `json:"name"`
	Count      int64             `json:"count"`
	SumSeconds float64           `json:"sum_seconds"`
	Buckets    []HistogramBucket `json:"buckets,omitempty"`
}

// TakeSnapshot copies the registry's current state. Safe to call while
// instruments are being updated; each instrument is read atomically
// (the snapshot as a whole is not a single atomic cut, which run
// reports do not need).
func (r *Registry) TakeSnapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	stages := make(map[string]*Stage, len(r.stages))
	for k, v := range r.stages {
		stages[k] = v
	}
	r.mu.Unlock()

	snap := Snapshot{}
	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for name, c := range counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(gauges))
		for name, g := range gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	for _, name := range sortedKeys(stages) {
		s := stages[name]
		count := s.count.Load()
		total := time.Duration(s.total.Load()).Seconds()
		ss := StageSnapshot{
			Name:         name,
			Count:        count,
			TotalSeconds: total,
			MaxSeconds:   time.Duration(s.max.Load()).Seconds(),
		}
		if count > 0 {
			ss.MeanSeconds = total / float64(count)
			ss.MinSeconds = time.Duration(s.min.Load()).Seconds()
		}
		snap.Stages = append(snap.Stages, ss)
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		hs := HistogramSnapshot{
			Name:       name,
			Count:      h.count.Load(),
			SumSeconds: time.Duration(h.sumNS.Load()).Seconds(),
		}
		cum := int64(0)
		for i := 0; i < histogramBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			// Bucket i holds observations up to 2^i µs.
			le := time.Duration(int64(1)<<uint(i)) * time.Microsecond
			hs.Buckets = append(hs.Buckets, HistogramBucket{
				LESeconds: le.Seconds(),
				Count:     cum,
			})
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// metricName maps a slash-separated instrument name onto one flat
// Prometheus-compatible metric name under the plotters_ namespace.
func metricName(name string) string {
	var b strings.Builder
	b.WriteString("plotters_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteText writes the snapshot in Prometheus/expvar-style text
// exposition: one "name value" line per sample, counters suffixed
// _total, stages expanded into _seconds_total/_count/_min/_max, and
// histograms into cumulative _bucket{le="..."} lines plus _sum and
// _count.
func (s Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "%s_total %d\n", metricName(name), s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "%s %d\n", metricName(name), s.Gauges[name])
	}
	for _, st := range s.Stages {
		m := metricName(st.Name)
		fmt.Fprintf(&b, "%s_seconds_total %g\n", m, st.TotalSeconds)
		fmt.Fprintf(&b, "%s_count %d\n", m, st.Count)
		fmt.Fprintf(&b, "%s_min_seconds %g\n", m, st.MinSeconds)
		fmt.Fprintf(&b, "%s_max_seconds %g\n", m, st.MaxSeconds)
	}
	for _, h := range s.Histograms {
		m := metricName(h.Name)
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m, fmt.Sprintf("%g", bk.LESeconds), bk.Count)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
		fmt.Fprintf(&b, "%s_sum %g\n", m, h.SumSeconds)
		fmt.Fprintf(&b, "%s_count %d\n", m, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an HTTP handler exposing the registry: Prometheus
// text by default, JSON with ?format=json (or an Accept header asking
// for application/json). Works on a nil registry (serves an empty
// snapshot).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.TakeSnapshot()
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if err := snap.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snap.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
