package metrics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil registry must be a complete no-op sink: nil instruments, no-op
// timers, an empty snapshot, and no panics anywhere.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(5)
	r.Gauge("g").Set(7)
	r.Gauge("g").SetMax(9)
	r.Gauge("g").Add(1)
	r.Histogram("h").Observe(time.Second)
	r.Stage("s").Observe(time.Second)
	timer := r.StartStage("x")
	if d := timer.Stop(); d != 0 {
		t.Errorf("no-op timer returned %v", d)
	}
	if d := timer.Child("y").Stop(); d != 0 {
		t.Errorf("no-op child timer returned %v", d)
	}
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	snap := r.TakeSnapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Stages)+len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("flows")
	c.Add(3)
	c.Add(4)
	if c.Value() != 7 {
		t.Errorf("counter = %d, want 7", c.Value())
	}
	if r.Counter("flows") != c {
		t.Error("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.SetMax(5) // lower: must not move
	if g.Value() != 10 {
		t.Errorf("SetMax lowered gauge to %d", g.Value())
	}
	g.SetMax(12)
	if g.Value() != 12 {
		t.Errorf("SetMax did not raise gauge: %d", g.Value())
	}
	g.Add(-2)
	if g.Value() != 10 {
		t.Errorf("Add(-2) = %d, want 10", g.Value())
	}
}

func TestStageStats(t *testing.T) {
	r := New()
	s := r.Stage("hm")
	s.Observe(10 * time.Millisecond)
	s.Observe(30 * time.Millisecond)
	s.Observe(20 * time.Millisecond)
	if s.Count() != 3 {
		t.Errorf("count = %d", s.Count())
	}
	if s.Total() != 60*time.Millisecond {
		t.Errorf("total = %v", s.Total())
	}
	snap := r.TakeSnapshot()
	if len(snap.Stages) != 1 {
		t.Fatalf("stages = %+v", snap.Stages)
	}
	st := snap.Stages[0]
	if st.Name != "hm" || st.Count != 3 {
		t.Errorf("stage snapshot = %+v", st)
	}
	if st.MinSeconds != 0.01 || st.MaxSeconds != 0.03 {
		t.Errorf("min/max = %v/%v, want 0.01/0.03", st.MinSeconds, st.MaxSeconds)
	}
	if st.MeanSeconds < 0.0199 || st.MeanSeconds > 0.0201 {
		t.Errorf("mean = %v, want 0.02", st.MeanSeconds)
	}
}

func TestStageTimerNesting(t *testing.T) {
	r := New()
	outer := r.StartStage("pipeline")
	inner := outer.Child("matrix")
	time.Sleep(time.Millisecond)
	if d := inner.Stop(); d <= 0 {
		t.Errorf("inner elapsed %v", d)
	}
	if d := outer.Stop(); d <= 0 {
		t.Errorf("outer elapsed %v", d)
	}
	snap := r.TakeSnapshot()
	names := make([]string, len(snap.Stages))
	for i, s := range snap.Stages {
		names[i] = s.Name
	}
	want := []string{"pipeline", "pipeline/matrix"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Errorf("stage names = %v, want %v", names, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("busy")
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(3 * time.Microsecond)
	h.Observe(time.Second)
	h.Observe(-time.Second) // clamps to 0
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	snap := r.TakeSnapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	if hs.Count != 4 {
		t.Errorf("snapshot count = %d", hs.Count)
	}
	// Buckets must be cumulative and end at the full count.
	last := int64(0)
	for _, b := range hs.Buckets {
		if b.Count < last {
			t.Errorf("buckets not cumulative: %+v", hs.Buckets)
		}
		last = b.Count
	}
	if last != 4 {
		t.Errorf("final cumulative bucket = %d, want 4", last)
	}
}

// Concurrent hammering under -race: one counter, one high-water gauge,
// one histogram, one stage from many goroutines.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	s := r.Stage("s")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(1)
				g.SetMax(int64(w*per + i))
				h.Observe(time.Duration(i) * time.Microsecond)
				s.Observe(time.Duration(i+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per-1 {
		t.Errorf("gauge high-water = %d, want %d", g.Value(), workers*per-1)
	}
	if h.Count() != workers*per || s.Count() != workers*per {
		t.Errorf("hist count = %d, stage count = %d", h.Count(), s.Count())
	}
	snap := r.TakeSnapshot()
	if snap.Stages[0].MinSeconds != 1e-6 {
		t.Errorf("stage min = %v, want 1µs", snap.Stages[0].MinSeconds)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("flowio/binary/records").Add(42)
	r.Gauge("pipeline/hosts/analyzed").Set(360)
	r.Stage("pipeline/hm").Observe(123 * time.Millisecond)
	r.Histogram("distmatrix/worker_busy").Observe(5 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.TakeSnapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if back.Counters["flowio/binary/records"] != 42 {
		t.Errorf("counter lost in round trip: %+v", back.Counters)
	}
	if back.Gauges["pipeline/hosts/analyzed"] != 360 {
		t.Errorf("gauge lost in round trip: %+v", back.Gauges)
	}
	if len(back.Stages) != 1 || back.Stages[0].Name != "pipeline/hm" || back.Stages[0].Count != 1 {
		t.Errorf("stages lost in round trip: %+v", back.Stages)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 1 {
		t.Errorf("histograms lost in round trip: %+v", back.Histograms)
	}
}

func TestWriteText(t *testing.T) {
	r := New()
	r.Counter("flowio/binary/records").Add(7)
	r.Gauge("stream/pending_highwater").Set(12)
	r.Stage("pipeline/hm/matrix").Observe(time.Millisecond)
	r.Histogram("distmatrix/worker_busy").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.TakeSnapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"plotters_flowio_binary_records_total 7",
		"plotters_stream_pending_highwater 12",
		"plotters_pipeline_hm_matrix_seconds_total",
		"plotters_pipeline_hm_matrix_count 1",
		"plotters_distmatrix_worker_busy_bucket{le=\"+Inf\"} 1",
		"plotters_distmatrix_worker_busy_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHandler(t *testing.T) {
	r := New()
	r.Counter("c").Add(1)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if _, err := text.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(text.String(), "plotters_c_total 1") {
		t.Errorf("text endpoint: %q", text.String())
	}

	resp, err = srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("json endpoint: %v", err)
	}
	if snap.Counters["c"] != 1 {
		t.Errorf("json snapshot = %+v", snap)
	}
}

// Recording on pre-fetched instruments must not allocate — the
// pipeline's hot loops depend on it.
func TestHotPathAllocationFree(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	s := r.Stage("s")
	for name, fn := range map[string]func(){
		"counter": func() { c.Add(1) },
		"gauge":   func() { g.SetMax(3) },
		"hist":    func() { h.Observe(time.Microsecond) },
		"stage":   func() { s.Observe(time.Microsecond) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per op", name, allocs)
		}
	}
}
