// Package metrics is the pipeline's instrumentation layer: named atomic
// counters, gauges, duration histograms, and nestable stage timers,
// collected in a Registry whose point-in-time Snapshot serializes to
// JSON and to Prometheus/expvar-style text.
//
// The package is built for a hot detection path at a busy border:
//
//   - A nil *Registry is a valid no-op sink. Every instrument it hands
//     out is nil, and every method on a nil instrument returns
//     immediately — instrumented code needs no "is monitoring on?"
//     branches of its own, and the disabled cost is one nil check.
//   - Recording is allocation-free: Counter.Add, Gauge.Set/SetMax,
//     Histogram.Observe, and StageTimer.Stop touch only atomics.
//     Instruments are meant to be looked up once (outside loops) and
//     used many times.
//   - Everything is safe for concurrent use; distmatrix workers hammer
//     the same counters from every CPU.
//
// Names are slash-separated paths ("pipeline/hm/matrix"); the slashes
// give stage timers their nesting structure and are mapped to
// underscores in the Prometheus text exposition.
package metrics

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. The zero value is ready to
// use; a nil Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark update (e.g. a reorder buffer's deepest point).
// No-op on a nil receiver.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histogramBuckets is the fixed bucket count of a duration histogram.
// Bucket i counts observations with ceil(d in µs) in [2^(i-1), 2^i)
// (bucket 0 holds sub-microsecond observations), so 40 buckets span
// 1 µs .. ~6.4 days — wider than any stage this pipeline times.
const histogramBuckets = 40

// Histogram accumulates a distribution of durations in exponential
// (power-of-two microsecond) buckets. The zero value is ready to use; a
// nil Histogram discards all updates.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [histogramBuckets]atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
// No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d.Microseconds()))
	if i >= histogramBuckets {
		i = histogramBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Count returns how many durations were observed (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed durations (0 for nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// minUnset marks a Stage that has not observed anything yet; any real
// duration ratchets the min below it.
const minUnset = int64(^uint64(0) >> 1) // math.MaxInt64 without the import

// Stage accumulates wall-time statistics for one named pipeline stage:
// how many times it ran and the total/min/max duration. Create stages
// through Registry.Stage; a nil Stage discards all updates.
type Stage struct {
	count atomic.Int64
	total atomic.Int64
	min   atomic.Int64 // minUnset until the first observation
	max   atomic.Int64
}

// newStage returns a Stage with the min sentinel armed.
func newStage() *Stage {
	s := &Stage{}
	s.min.Store(minUnset)
	return s
}

// Observe records one completed run of the stage. No-op on a nil
// receiver.
func (s *Stage) Observe(d time.Duration) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	s.total.Add(ns)
	for {
		cur := s.max.Load()
		if ns <= cur || s.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := s.min.Load()
		if ns >= cur || s.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	s.count.Add(1)
}

// Count returns how many times the stage ran (0 for nil).
func (s *Stage) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// Total returns the accumulated stage duration (0 for nil).
func (s *Stage) Total() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.total.Load())
}

// StageTimer times one run of a named stage. It is a value type — no
// allocation per timing — and the zero StageTimer (from a nil Registry)
// is a no-op.
type StageTimer struct {
	reg   *Registry
	name  string
	start time.Time
}

// Stop records the elapsed time since StartStage and returns it. A
// zero/no-op timer returns 0.
func (t StageTimer) Stop() time.Duration {
	if t.reg == nil {
		return 0
	}
	d := time.Since(t.start)
	t.reg.Stage(t.name).Observe(d)
	return d
}

// Child starts a nested stage named "<parent>/<name>", so a pipeline
// stage can time its own sub-phases under its prefix. On a no-op timer
// it returns another no-op timer.
func (t StageTimer) Child(name string) StageTimer {
	if t.reg == nil {
		return StageTimer{}
	}
	return t.reg.StartStage(t.name + "/" + name)
}

// Registry is a named collection of instruments. The zero value is not
// used directly — call New — but a nil *Registry is a fully functional
// no-op sink: all lookups return nil instruments and StartStage returns
// a no-op timer.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	stages     map[string]*Stage
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		stages:     make(map[string]*Stage),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first
// use. Returns nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Stage returns the named stage accumulator, creating it on first use.
// Returns nil (a no-op stage) on a nil registry.
func (r *Registry) Stage(name string) *Stage {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.stages[name]
	if !ok {
		s = newStage()
		r.stages[name] = s
	}
	return s
}

// StartStage begins timing one run of the named stage. On a nil
// registry it returns a no-op timer without reading the clock.
func (r *Registry) StartStage(name string) StageTimer {
	if r == nil {
		return StageTimer{}
	}
	return StageTimer{reg: r, name: name, start: time.Now()}
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
