package emd

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestDistance1DKnownValues(t *testing.T) {
	tests := []struct {
		name               string
		pos1, w1, pos2, w2 []float64
		want               float64
	}{
		{
			name: "identical point masses",
			pos1: []float64{5}, w1: []float64{1},
			pos2: []float64{5}, w2: []float64{1},
			want: 0,
		},
		{
			name: "point masses distance 3",
			pos1: []float64{2}, w1: []float64{1},
			pos2: []float64{5}, w2: []float64{1},
			want: 3,
		},
		{
			name: "split mass to one point",
			pos1: []float64{0, 2}, w1: []float64{0.5, 0.5},
			pos2: []float64{1}, w2: []float64{1},
			want: 1, // each half moves distance 1
		},
		{
			name: "two-point swap",
			pos1: []float64{0, 10}, w1: []float64{0.5, 0.5},
			pos2: []float64{1, 9}, w2: []float64{0.5, 0.5},
			want: 1, // 0→1 and 10→9, each carrying half mass
		},
		{
			name: "unnormalized weights are normalized",
			pos1: []float64{0}, w1: []float64{10},
			pos2: []float64{4}, w2: []float64{2},
			want: 4,
		},
		{
			name: "asymmetric split",
			pos1: []float64{0}, w1: []float64{1},
			pos2: []float64{1, 3}, w2: []float64{0.75, 0.25},
			want: 0.75*1 + 0.25*3,
		},
		{
			name: "duplicate positions coalesce",
			pos1: []float64{1, 1, 4}, w1: []float64{0.25, 0.25, 0.5},
			pos2: []float64{1, 4}, w2: []float64{0.5, 0.5},
			want: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Distance1D(tt.pos1, tt.w1, tt.pos2, tt.w2)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("Distance1D = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistance1DErrors(t *testing.T) {
	ok := []float64{1}
	okW := []float64{1}
	tests := []struct {
		name               string
		pos1, w1, pos2, w2 []float64
	}{
		{"empty first", nil, nil, ok, okW},
		{"empty second", ok, okW, nil, nil},
		{"zero mass", []float64{1, 2}, []float64{0, 0}, ok, okW},
		{"negative weight", []float64{1}, []float64{-1}, ok, okW},
		{"nan weight", []float64{1}, []float64{math.NaN()}, ok, okW},
		{"inf position", []float64{math.Inf(1)}, []float64{1}, ok, okW},
		{"length mismatch", []float64{1, 2}, []float64{1}, ok, okW},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Distance1D(tt.pos1, tt.w1, tt.pos2, tt.w2); err == nil {
				t.Error("expected error")
			}
		})
	}
}

// randomSignature builds a valid random signature with k points.
func randomSignature(rng *rand.Rand, k int) (pos, w []float64) {
	pos = make([]float64, k)
	w = make([]float64, k)
	for i := 0; i < k; i++ {
		pos[i] = rng.Float64() * 100
		w[i] = rng.Float64() + 0.01
	}
	return pos, w
}

func TestDistance1DMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		k1, k2, k3 := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		p1, w1 := randomSignature(rng, k1)
		p2, w2 := randomSignature(rng, k2)
		p3, w3 := randomSignature(rng, k3)

		d12, err := Distance1D(p1, w1, p2, w2)
		if err != nil {
			t.Fatal(err)
		}
		d21, err := Distance1D(p2, w2, p1, w1)
		if err != nil {
			t.Fatal(err)
		}
		d11, err := Distance1D(p1, w1, p1, w1)
		if err != nil {
			t.Fatal(err)
		}
		d13, err := Distance1D(p1, w1, p3, w3)
		if err != nil {
			t.Fatal(err)
		}
		d23, err := Distance1D(p2, w2, p3, w3)
		if err != nil {
			t.Fatal(err)
		}
		if d12 < 0 {
			t.Fatalf("trial %d: negative distance %v", trial, d12)
		}
		if math.Abs(d12-d21) > 1e-9 {
			t.Fatalf("trial %d: asymmetric %v vs %v", trial, d12, d21)
		}
		if math.Abs(d11) > 1e-9 {
			t.Fatalf("trial %d: self-distance %v", trial, d11)
		}
		if d13 > d12+d23+1e-9 {
			t.Fatalf("trial %d: triangle violated: %v > %v + %v", trial, d13, d12, d23)
		}
	}
}

// The EMD between a distribution and its translate equals the shift — the
// property that makes EMD robust to timing offsets between bots.
func TestDistance1DShiftProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(10)
		pos, w := randomSignature(rng, k)
		shift := rng.Float64() * 500
		shifted := make([]float64, k)
		for i, p := range pos {
			shifted[i] = p + shift
		}
		d, err := Distance1D(pos, w, shifted, w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-shift) > 1e-7 {
			t.Fatalf("trial %d: shift distance = %v, want %v", trial, d, shift)
		}
	}
}

// Cross-validation: the closed-form 1-D EMD must agree with the general
// transportation-simplex solver under the |a−b| ground distance.
func TestDistance1DMatchesTransportSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	abs := func(a, b float64) float64 { return math.Abs(a - b) }
	for trial := 0; trial < 80; trial++ {
		k1, k2 := 1+rng.Intn(12), 1+rng.Intn(12)
		p1, w1 := randomSignature(rng, k1)
		p2, w2 := randomSignature(rng, k2)
		closed, err := Distance1D(p1, w1, p2, w2)
		if err != nil {
			t.Fatal(err)
		}
		general, err := DistanceGeneral(p1, w1, p2, w2, abs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(closed-general) > 1e-7 {
			t.Fatalf("trial %d: closed form %v vs simplex %v", trial, closed, general)
		}
	}
}

func TestTransportKnownOptimal(t *testing.T) {
	// Classic 3×4 transportation example with known optimum 743
	// (a standard textbook instance).
	supply := []float64{15, 25, 10}
	demand := []float64{5, 15, 15, 15}
	cost := [][]float64{
		{10, 2, 20, 11},
		{12, 7, 9, 20},
		{4, 14, 16, 18},
	}
	flow, total, err := Transport(supply, demand, cost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-435) > 1e-9 {
		t.Errorf("total = %v, want 435", total)
	}
	checkFeasible(t, flow, supply, demand)
}

func TestTransportDegenerate(t *testing.T) {
	// Supplies exactly matching individual demands creates degeneracy at
	// every northwest-corner step.
	supply := []float64{10, 10, 10}
	demand := []float64{10, 10, 10}
	cost := [][]float64{
		{0, 5, 5},
		{5, 0, 5},
		{5, 5, 0},
	}
	flow, total, err := Transport(supply, demand, cost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total) > 1e-9 {
		t.Errorf("total = %v, want 0 (identity assignment)", total)
	}
	checkFeasible(t, flow, supply, demand)
}

func TestTransportSingleCell(t *testing.T) {
	flow, total, err := Transport([]float64{7}, []float64{7}, [][]float64{{3}})
	if err != nil {
		t.Fatal(err)
	}
	if flow[0][0] != 7 || total != 21 {
		t.Errorf("flow = %v total = %v", flow, total)
	}
}

func TestTransportZeroEntries(t *testing.T) {
	// Zero supplies/demands are legal and produce zero flow rows/columns.
	supply := []float64{0, 5}
	demand := []float64{5, 0}
	cost := [][]float64{{1, 1}, {2, 3}}
	flow, total, err := Transport(supply, demand, cost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-10) > 1e-9 {
		t.Errorf("total = %v, want 10", total)
	}
	checkFeasible(t, flow, supply, demand)
}

func TestTransportErrors(t *testing.T) {
	tests := []struct {
		name   string
		supply []float64
		demand []float64
		cost   [][]float64
	}{
		{"no suppliers", nil, []float64{1}, nil},
		{"no consumers", []float64{1}, nil, [][]float64{{}}},
		{"cost rows mismatch", []float64{1}, []float64{1}, nil},
		{"cost cols mismatch", []float64{1}, []float64{1}, [][]float64{{1, 2}}},
		{"negative supply", []float64{-1}, []float64{-1}, [][]float64{{1}}},
		{"negative demand", []float64{1}, []float64{-1}, [][]float64{{1}}},
		{"nan cost", []float64{1}, []float64{1}, [][]float64{{math.NaN()}}},
		{"unbalanced", []float64{5}, []float64{3}, [][]float64{{1}}},
		{"all zero mass", []float64{0}, []float64{0}, [][]float64{{1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := Transport(tt.supply, tt.demand, tt.cost); err == nil {
				t.Error("expected error")
			}
		})
	}
	_, _, err := Transport([]float64{5}, []float64{3}, [][]float64{{1}})
	if !errors.Is(err, ErrUnbalanced) {
		t.Errorf("unbalanced error = %v, want ErrUnbalanced", err)
	}
}

func TestTransportRandomAgainstBruteForce(t *testing.T) {
	// For 2×2 problems the optimum has a closed form: try both extreme
	// bases and take the cheaper feasible one.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 200; trial++ {
		a := rng.Float64()*10 + 0.1
		b := rng.Float64()*10 + 0.1
		c := rng.Float64()*10 + 0.1
		d := a + b - c
		if d <= 0 {
			continue
		}
		supply := []float64{a, b}
		demand := []float64{c, d}
		cost := [][]float64{
			{rng.Float64() * 10, rng.Float64() * 10},
			{rng.Float64() * 10, rng.Float64() * 10},
		}
		// One free variable x = flow[0][0] ∈ [max(0, c-b), min(a, c)];
		// cost is linear in x, so the optimum is at an endpoint.
		evalAt := func(x float64) float64 {
			return x*cost[0][0] + (a-x)*cost[0][1] + (c-x)*cost[1][0] + (b-c+x)*cost[1][1]
		}
		lo := math.Max(0, c-b)
		hi := math.Min(a, c)
		want := math.Min(evalAt(lo), evalAt(hi))

		_, total, err := Transport(supply, demand, cost)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(total-want) > 1e-7 {
			t.Fatalf("trial %d: total %v, want %v", trial, total, want)
		}
	}
}

func TestDistanceGeneralSquaredGround(t *testing.T) {
	// With squared ground distance, splitting mass beats moving it whole:
	// EMD(δ₀, ½δ₋₁+½δ₁) = ½·1 + ½·1 = 1 under (a−b)².
	sq := func(a, b float64) float64 { d := a - b; return d * d }
	got, err := DistanceGeneral(
		[]float64{0}, []float64{1},
		[]float64{-1, 1}, []float64{0.5, 0.5},
		sq,
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("squared-ground EMD = %v, want 1", got)
	}
}

func TestDistanceGeneralErrors(t *testing.T) {
	abs := func(a, b float64) float64 { return math.Abs(a - b) }
	if _, err := DistanceGeneral(nil, nil, []float64{1}, []float64{1}, abs); err == nil {
		t.Error("expected error for empty first signature")
	}
	if _, err := DistanceGeneral([]float64{1}, []float64{1}, nil, nil, abs); err == nil {
		t.Error("expected error for empty second signature")
	}
}

func checkFeasible(t *testing.T, flow [][]float64, supply, demand []float64) {
	t.Helper()
	for i, row := range flow {
		var sum float64
		for _, f := range row {
			if f < -1e-9 {
				t.Fatalf("negative flow %v at row %d", f, i)
			}
			sum += f
		}
		if math.Abs(sum-supply[i]) > 1e-7 {
			t.Fatalf("row %d ships %v, supply %v", i, sum, supply[i])
		}
	}
	for j := range demand {
		var sum float64
		for i := range flow {
			sum += flow[i][j]
		}
		if math.Abs(sum-demand[j]) > 1e-7 {
			t.Fatalf("column %d receives %v, demand %v", j, sum, demand[j])
		}
	}
}

func BenchmarkDistance1D128Bins(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	p1, w1 := randomSignature(rng, 128)
	p2, w2 := randomSignature(rng, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Distance1D(p1, w1, p2, w2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransportSimplex16x16(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	p1, w1 := randomSignature(rng, 16)
	p2, w2 := randomSignature(rng, 16)
	abs := func(a, c float64) float64 { return math.Abs(a - c) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DistanceGeneral(p1, w1, p2, w2, abs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSignaturePreparedMatchesDistance1D(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n1, n2 := 1+rng.Intn(40), 1+rng.Intn(40)
		pos1, w1 := randomSig(rng, n1)
		pos2, w2 := randomSig(rng, n2)
		want, err := Distance1D(pos1, w1, pos2, w2)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := NewSignature(pos1, w1)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := NewSignature(pos2, w2)
		if err != nil {
			t.Fatal(err)
		}
		// Bit-identical, not merely close: both paths run the same
		// distance1D over the same prepared form.
		if got := s1.Distance(s2); got != want {
			t.Fatalf("trial %d: prepared %v != Distance1D %v", trial, got, want)
		}
		if got := s2.Distance(s1); got != want {
			t.Fatalf("trial %d: prepared reversed %v != %v", trial, got, want)
		}
	}
}

func TestSignatureSelfDistanceZero(t *testing.T) {
	s, err := NewSignature([]float64{3, 1, 2}, []float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Distance(s); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestSignatureErrors(t *testing.T) {
	if _, err := NewSignature([]float64{1}, []float64{0}); !errors.Is(err, ErrEmptySignature) {
		t.Errorf("zero mass err = %v, want ErrEmptySignature", err)
	}
	if _, err := NewSignature([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewSignature([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("NaN position accepted")
	}
	if _, err := NewSignature([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestSignatureCopiesInputs(t *testing.T) {
	pos := []float64{0, 5}
	w := []float64{0.5, 0.5}
	s, err := NewSignature(pos, w)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewSignature([]float64{0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Distance(other)
	pos[1], w[0] = 1000, 0.01 // mutate the caller's slices
	if after := s.Distance(other); after != before {
		t.Errorf("prepared signature aliased caller slices: %v != %v", after, before)
	}
}

func randomSig(rng *rand.Rand, n int) (pos, w []float64) {
	pos = make([]float64, n)
	w = make([]float64, n)
	for i := range pos {
		pos[i] = rng.NormFloat64() * 10
		w[i] = rng.Float64()
	}
	// Guarantee positive total mass.
	w[rng.Intn(n)] += 0.5
	return pos, w
}
