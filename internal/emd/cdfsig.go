package emd

// Coarsened-CDF signatures: a cheap, admissible lower bound on the 1-D
// EMD used to prune the θ_hm pairwise matrix.
//
// Distance1D integrates |F_a − F_b| over the merged support. Partition
// [lo, hi] into G equal cells; for any cell C,
//
//	∫_C |F_a − F_b| dt  ≥  |∫_C F_a dt − ∫_C F_b dt|
//
// so precomputing the per-host vector of exact cell integrals
// A_t = ∫_{C_t} F(t) dt turns Σ_t |A_t − B_t| into a lower bound on the
// EMD restricted to [lo, hi]. When [lo, hi] covers every signature's
// support the restriction is the whole integral — below lo both CDFs are
// 0, above hi both are 1 — so the bound is admissible for the full
// distance. It is exact in the limit G → ∞ and already tight enough at a
// few dozen cells to discard the vast majority of above-cut pairs.
//
// The payoff is shape: the per-host precomputation is O(m + G) once, and
// the per-pair bound is an L1 distance between two fixed-length flat
// float64 vectors — a branch-free loop the compiler keeps in registers,
// 30–50× cheaper than an exact EMD evaluation over two ~hundred-bin
// signatures.

// CDFSignature is a host's coarsened-CDF signature over a shared grid:
// vals[t] is the exact integral of the signature's CDF over grid cell t.
// Signatures are only comparable when built over the identical grid
// (same lo, hi, and cell count).
type CDFSignature struct {
	vals []float64
}

// Cells returns the number of grid cells.
func (c *CDFSignature) Cells() int { return len(c.vals) }

// Support returns the smallest and largest mass-bearing positions of a
// prepared signature. A valid signature always has at least one
// position.
func (s *Signature) Support() (lo, hi float64) {
	return s.sig.pos[0], s.sig.pos[len(s.sig.pos)-1]
}

// CDFSignature builds the coarsened-CDF signature of s over the grid of
// `cells` equal cells spanning [lo, hi]. For the resulting pairwise
// LowerBound to be admissible, [lo, hi] must cover the support of every
// signature that will be compared (use the global min/max over all
// hosts' Support). A degenerate grid (hi <= lo or cells <= 0) yields a
// zero-cell signature whose bound is 0 — always admissible, never
// prunes.
func (s *Signature) CDFSignature(lo, hi float64, cells int) *CDFSignature {
	if cells <= 0 || hi <= lo {
		return &CDFSignature{}
	}
	vals := make([]float64, cells)
	pos, w := s.sig.pos, s.sig.w
	var cdf float64
	k := 0
	span := hi - lo
	b := lo
	for t := 0; t < cells; t++ {
		a := b
		// Computing each edge from the span (rather than accumulating a
		// width) keeps the final edge exactly hi.
		if t == cells-1 {
			b = hi
		} else {
			b = lo + span*float64(t+1)/float64(cells)
		}
		// Exact integral of the right-continuous step CDF over [a, b):
		// positions inside the cell split it into constant segments. A
		// jump exactly at b has zero measure here and lands in the next
		// cell's update loop.
		prev := a
		var acc float64
		for k < len(pos) && pos[k] < b {
			if pos[k] > prev {
				acc += cdf * (pos[k] - prev)
				prev = pos[k]
			}
			cdf += w[k]
			k++
		}
		acc += cdf * (b - prev)
		vals[t] = acc
	}
	return &CDFSignature{vals: vals}
}

// LowerBound returns Σ_t |a_t − b_t|, an admissible lower bound on the
// exact 1-D EMD between the two underlying signatures, provided both
// coarse signatures were built over the same grid and that grid spans
// both supports. Mismatched cell counts compare only the shared prefix,
// which keeps the bound admissible (each dropped term is non-negative).
func LowerBound(a, b *CDFSignature) float64 {
	av, bv := a.vals, b.vals
	if len(bv) < len(av) {
		av, bv = bv, av
	}
	bv = bv[:len(av)]
	var sum float64
	for i, x := range av {
		d := x - bv[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}

// LowerBoundAtLeast is LowerBound with an early exit for pruning: it
// stops accumulating as soon as the partial sum exceeds stop. Every
// prefix of the full sum is itself an admissible lower bound (each
// dropped term is non-negative), so the returned value is always a true
// lower bound on the exact EMD — just no tighter than stop requires.
// With a stop just above the pruning cut, far pairs exit after the few
// cells where their CDFs first diverge, which matters when the exact
// evaluation being avoided is only a small multiple of a full bound
// scan.
func LowerBoundAtLeast(a, b *CDFSignature, stop float64) float64 {
	av, bv := a.vals, b.vals
	if len(bv) < len(av) {
		av, bv = bv, av
	}
	bv = bv[:len(av)]
	var sum float64
	for i, x := range av {
		d := x - bv[i]
		if d < 0 {
			d = -d
		}
		sum += d
		if sum > stop {
			return sum
		}
	}
	return sum
}
