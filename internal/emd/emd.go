// Package emd implements the Earth Mover's Distance (Rubner, Tomasi &
// Guibas, 1998) used by the θ_hm test to compare per-host interstitial
// time distributions.
//
// EMD is the minimum-cost solution of the classic transportation problem
// (Dantzig, 1951): move the probability mass of one distribution onto the
// other at per-unit cost equal to the ground distance between bin
// positions. Two solvers are provided:
//
//   - Distance1D: an exact O(m+n) closed form for one-dimensional
//     signatures with |·| ground distance, obtained by integrating the
//     absolute difference of the two CDFs. This is what the detection
//     pipeline uses (interstitial times are scalar).
//   - Transport: a general transportation-simplex solver (northwest-corner
//     start, MODI improvement with Bland's rule) for arbitrary cost
//     matrices. It cross-validates the closed form in tests and supports
//     non-scalar ground distances.
//
// Both operate on "signatures": parallel slices of positions and
// non-negative weights. Distances are defined for equal total mass; the
// package normalizes both signatures to unit mass, matching the paper's
// normalized histograms.
package emd

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmptySignature is returned when a signature has no mass.
var ErrEmptySignature = errors.New("emd: empty signature")

// weightEps is the tolerance below which residual mass is considered zero.
const weightEps = 1e-12

// Distance1D returns the Earth Mover's Distance between two
// one-dimensional signatures under the |a-b| ground distance. Weights are
// normalized to unit total mass; they must be non-negative and sum to a
// positive value. Positions need not be sorted.
func Distance1D(pos1, w1, pos2, w2 []float64) (float64, error) {
	s1, err := newSignature(pos1, w1)
	if err != nil {
		return 0, fmt.Errorf("emd: signature 1: %w", err)
	}
	s2, err := newSignature(pos2, w2)
	if err != nil {
		return 0, fmt.Errorf("emd: signature 2: %w", err)
	}
	return distance1D(s1, s2), nil
}

// Signature is a validated, sorted, unit-mass 1-D signature prepared for
// repeated distance queries. Distance1D re-validates, re-sorts, and
// re-normalizes both inputs on every call; when one distribution is
// compared against many others — the θ_hm pairwise matrix compares each
// host against every other — preparing each side once with NewSignature
// removes that per-pair overhead and makes the comparison allocation-free.
type Signature struct {
	sig signature
}

// NewSignature validates and prepares a signature: positions are sorted,
// duplicate positions coalesced, zero weights dropped, and weights
// normalized to unit mass. The inputs are copied; the caller may reuse
// them.
func NewSignature(pos, w []float64) (*Signature, error) {
	s, err := newSignature(pos, w)
	if err != nil {
		return nil, fmt.Errorf("emd: %w", err)
	}
	return &Signature{sig: s}, nil
}

// Len returns the number of distinct mass-bearing positions.
func (s *Signature) Len() int { return len(s.sig.pos) }

// Distance returns the 1-D EMD between two prepared signatures. It
// performs no validation or allocation and is safe for concurrent use:
// prepared signatures are immutable.
func (s *Signature) Distance(t *Signature) float64 {
	return distance1D(s.sig, t.sig)
}

type signature struct {
	pos []float64 // sorted ascending
	w   []float64 // normalized to sum 1, parallel to pos
}

func newSignature(pos, w []float64) (signature, error) {
	if len(pos) != len(w) {
		return signature{}, fmt.Errorf("positions (%d) and weights (%d) length mismatch", len(pos), len(w))
	}
	var total float64
	for i, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return signature{}, fmt.Errorf("invalid weight %v at %d", x, i)
		}
		if math.IsNaN(pos[i]) || math.IsInf(pos[i], 0) {
			return signature{}, fmt.Errorf("invalid position %v at %d", pos[i], i)
		}
		total += x
	}
	if total <= 0 {
		return signature{}, ErrEmptySignature
	}
	idx := make([]int, len(pos))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pos[idx[a]] < pos[idx[b]] })
	s := signature{pos: make([]float64, 0, len(pos)), w: make([]float64, 0, len(w))}
	for _, i := range idx {
		if w[i] == 0 {
			continue
		}
		// Coalesce duplicate positions so downstream merges stay simple.
		if n := len(s.pos); n > 0 && s.pos[n-1] == pos[i] {
			s.w[n-1] += w[i] / total
			continue
		}
		s.pos = append(s.pos, pos[i])
		s.w = append(s.w, w[i]/total)
	}
	return s, nil
}

// distance1D integrates |CDF1(t) − CDF2(t)| dt across the merged support.
// For unit-mass 1-D distributions this equals the optimal transport cost.
func distance1D(a, b signature) float64 {
	var (
		total    float64
		cdfA     float64
		cdfB     float64
		i, j     int
		prevTick float64
		started  bool
	)
	for i < len(a.pos) || j < len(b.pos) {
		var tick float64
		switch {
		case i >= len(a.pos):
			tick = b.pos[j]
		case j >= len(b.pos):
			tick = a.pos[i]
		case a.pos[i] <= b.pos[j]:
			tick = a.pos[i]
		default:
			tick = b.pos[j]
		}
		if started {
			total += math.Abs(cdfA-cdfB) * (tick - prevTick)
		}
		for i < len(a.pos) && a.pos[i] == tick {
			cdfA += a.w[i]
			i++
		}
		for j < len(b.pos) && b.pos[j] == tick {
			cdfB += b.w[j]
			j++
		}
		prevTick = tick
		started = true
	}
	return total
}

// DistanceHistograms returns the 1-D EMD between two histogram-shaped
// inputs expressed as bin centers and masses. It is a convenience wrapper
// over Distance1D.
func DistanceHistograms(centers1, mass1, centers2, mass2 []float64) (float64, error) {
	return Distance1D(centers1, mass1, centers2, mass2)
}
