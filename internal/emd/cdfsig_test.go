package emd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSignature draws a small random signature from the quick generator's
// source: positions in [0, 20), weights in (0, 1].
func randSignature(t *testing.T, rng *rand.Rand) *Signature {
	t.Helper()
	n := 1 + rng.Intn(12)
	pos := make([]float64, n)
	w := make([]float64, n)
	for i := range pos {
		pos[i] = rng.Float64() * 20
		w[i] = rng.Float64() + 1e-3
	}
	s, err := NewSignature(pos, w)
	if err != nil {
		t.Fatalf("NewSignature: %v", err)
	}
	return s
}

// gridFor returns a grid spanning both supports.
func gridFor(a, b *Signature) (float64, float64) {
	alo, ahi := a.Support()
	blo, bhi := b.Support()
	return math.Min(alo, blo), math.Max(ahi, bhi)
}

// TestCDFLowerBoundAdmissible is the bound's safety property: for random
// signature pairs and random grid resolutions, the coarsened-CDF L1
// distance never exceeds the exact EMD (up to float rounding slack — the
// pruning layers apply a relative safety margin for the same reason).
func TestCDFLowerBoundAdmissible(t *testing.T) {
	property := func(seed int64, cellsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSignature(t, rng)
		b := randSignature(t, rng)
		cells := 1 + int(cellsRaw)%128
		lo, hi := gridFor(a, b)
		bound := LowerBound(a.CDFSignature(lo, hi, cells), b.CDFSignature(lo, hi, cells))
		exact := a.Distance(b)
		return bound <= exact*(1+1e-9)+1e-12
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCDFLowerBoundAtLeastAdmissible: the early-exit variant must stay
// admissible for any stop value — a prefix partial sum can never exceed
// the exact EMD — and must agree with the full scan whenever it runs to
// completion (stop above the full sum).
func TestCDFLowerBoundAtLeastAdmissible(t *testing.T) {
	property := func(seed int64, cellsRaw uint8, stopRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSignature(t, rng)
		b := randSignature(t, rng)
		cells := 1 + int(cellsRaw)%128
		lo, hi := gridFor(a, b)
		ca, cb := a.CDFSignature(lo, hi, cells), b.CDFSignature(lo, hi, cells)
		full := LowerBound(ca, cb)
		stop := float64(stopRaw) / 16
		capped := LowerBoundAtLeast(ca, cb, stop)
		exact := a.Distance(b)
		if capped > exact*(1+1e-9)+1e-12 {
			t.Logf("capped bound %v exceeds exact %v (stop %v)", capped, exact, stop)
			return false
		}
		if capped <= stop && capped != full {
			t.Logf("non-exiting capped scan %v differs from full bound %v", capped, full)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCDFLowerBoundExactAtFineGrids: with cells covering every distinct
// position pair the bound converges to the exact distance on simple
// two-spike signatures, confirming the integrals are exact rather than
// merely bounded.
func TestCDFLowerBoundExactAtFineGrids(t *testing.T) {
	a, err := NewSignature([]float64{0, 8}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSignature([]float64{2, 6}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	exact := a.Distance(b)
	lo, hi := gridFor(a, b)
	bound := LowerBound(a.CDFSignature(lo, hi, 4), b.CDFSignature(lo, hi, 4))
	if math.Abs(bound-exact) > 1e-12 {
		t.Errorf("bound = %v, exact = %v: grid aligned with all jumps should be tight", bound, exact)
	}
}

// TestCDFLowerBoundTightensWithResolution: refining the grid by an
// integer factor never loosens the bound (each coarse cell's |Σ| is at
// most the Σ|·| of its refinement).
func TestCDFLowerBoundTightensWithResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := randSignature(t, rng)
		b := randSignature(t, rng)
		lo, hi := gridFor(a, b)
		coarse := LowerBound(a.CDFSignature(lo, hi, 8), b.CDFSignature(lo, hi, 8))
		fine := LowerBound(a.CDFSignature(lo, hi, 64), b.CDFSignature(lo, hi, 64))
		if coarse > fine*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: coarse bound %v exceeds fine bound %v", trial, coarse, fine)
		}
	}
}

// TestCDFSignatureDegenerate: zero-cell grids (hi <= lo, cells <= 0)
// yield a zero bound — safe, never pruning.
func TestCDFSignatureDegenerate(t *testing.T) {
	s, err := NewSignature([]float64{3}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*CDFSignature{
		s.CDFSignature(3, 3, 16),
		s.CDFSignature(5, 2, 16),
		s.CDFSignature(0, 1, 0),
	} {
		if c.Cells() != 0 {
			t.Errorf("degenerate grid produced %d cells", c.Cells())
		}
	}
	if lb := LowerBound(s.CDFSignature(3, 3, 16), s.CDFSignature(3, 3, 16)); lb != 0 {
		t.Errorf("degenerate bound = %v, want 0", lb)
	}
}

// TestCDFSignatureMassConservation: the integrals of the full-support
// grid sum to ∫ F over [lo, hi]; for a unit spike at lo this is the
// whole span, pinning the integral orientation (CDF, not survival).
func TestCDFSignatureMassConservation(t *testing.T) {
	s, err := NewSignature([]float64{1}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	c := s.CDFSignature(1, 5, 16)
	var sum float64
	for _, v := range c.vals {
		sum += v
	}
	if math.Abs(sum-4) > 1e-12 {
		t.Errorf("∫F over [1,5] = %v, want 4", sum)
	}
}
