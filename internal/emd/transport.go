package emd

import (
	"errors"
	"fmt"
	"math"
)

// balanceTol is the allowed relative imbalance between total supply and
// total demand in Transport.
const balanceTol = 1e-9

// reducedCostTol is the optimality tolerance: a cell enters the basis only
// if its reduced cost is below -reducedCostTol.
const reducedCostTol = 1e-12

// ErrUnbalanced is returned by Transport when total supply and total
// demand differ.
var ErrUnbalanced = errors.New("emd: total supply and demand differ")

// Transport solves the balanced transportation problem
//
//	minimize   Σᵢⱼ cost[i][j]·flow[i][j]
//	subject to Σⱼ flow[i][j] = supply[i]   for every supplier i
//	           Σᵢ flow[i][j] = demand[j]   for every consumer j
//	           flow[i][j] ≥ 0
//
// using the transportation simplex: a northwest-corner initial basic
// feasible solution improved by MODI (u-v potential) iterations, with
// Bland's rule for anti-cycling under degeneracy.
//
// supply and demand must be non-negative and have equal positive totals
// (within a small relative tolerance). cost must be a len(supply) ×
// len(demand) matrix of finite values. The returned flow matrix attains
// the returned optimal total cost.
func Transport(supply, demand []float64, cost [][]float64) ([][]float64, float64, error) {
	m, n := len(supply), len(demand)
	if m == 0 || n == 0 {
		return nil, 0, fmt.Errorf("emd: transport needs suppliers and consumers, got %d×%d", m, n)
	}
	if len(cost) != m {
		return nil, 0, fmt.Errorf("emd: cost has %d rows, want %d", len(cost), m)
	}
	var totalSupply, totalDemand float64
	for i, s := range supply {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, 0, fmt.Errorf("emd: invalid supply %v at %d", s, i)
		}
		totalSupply += s
	}
	for j, d := range demand {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, 0, fmt.Errorf("emd: invalid demand %v at %d", d, j)
		}
		totalDemand += d
	}
	for i := range cost {
		if len(cost[i]) != n {
			return nil, 0, fmt.Errorf("emd: cost row %d has %d entries, want %d", i, len(cost[i]), n)
		}
		for j, c := range cost[i] {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, 0, fmt.Errorf("emd: invalid cost %v at (%d,%d)", c, i, j)
			}
		}
	}
	scale := math.Max(totalSupply, totalDemand)
	if scale <= 0 {
		return nil, 0, ErrEmptySignature
	}
	if math.Abs(totalSupply-totalDemand) > balanceTol*scale {
		return nil, 0, fmt.Errorf("%w: supply %v vs demand %v", ErrUnbalanced, totalSupply, totalDemand)
	}

	t := &tableau{m: m, n: n, cost: cost}
	t.northwestCorner(supply, demand)
	if err := t.optimize(); err != nil {
		return nil, 0, err
	}
	return t.flow, t.totalCost(), nil
}

// tableau holds the transportation-simplex state: the allocation matrix
// and the set of basic cells, which always form a spanning tree of the
// bipartite supplier/consumer graph.
type tableau struct {
	m, n  int
	cost  [][]float64
	flow  [][]float64
	basic [][]bool
}

// northwestCorner builds the initial basic feasible solution. When a row
// and a column are exhausted simultaneously (degeneracy), only the row
// advances and the next cell enters the basis with a zero allocation,
// preserving the invariant of exactly m+n−1 basic cells.
func (t *tableau) northwestCorner(supply, demand []float64) {
	t.flow = make([][]float64, t.m)
	t.basic = make([][]bool, t.m)
	for i := range t.flow {
		t.flow[i] = make([]float64, t.n)
		t.basic[i] = make([]bool, t.n)
	}
	remS := make([]float64, t.m)
	copy(remS, supply)
	remD := make([]float64, t.n)
	copy(remD, demand)

	i, j := 0, 0
	for i < t.m && j < t.n {
		alloc := math.Min(remS[i], remD[j])
		t.flow[i][j] = alloc
		t.basic[i][j] = true
		remS[i] -= alloc
		remD[j] -= alloc
		switch {
		case i == t.m-1 && j == t.n-1:
			i++
			j++
		case remS[i] <= weightEps && i < t.m-1:
			i++
		default:
			j++
		}
	}
}

// optimize runs MODI improvement iterations until no cell has a negative
// reduced cost. Bland's rule (first eligible cell in row-major order)
// prevents cycling on degenerate tableaux.
func (t *tableau) optimize() error {
	u := make([]float64, t.m)
	v := make([]float64, t.n)
	// The basis has m+n−1 cells; each pivot swaps one in and one out, so a
	// generous polynomial cap catches implementation bugs without ever
	// tripping on legitimate inputs.
	maxIter := 50 * (t.m + t.n) * (t.m + t.n)
	for iter := 0; iter < maxIter; iter++ {
		if err := t.potentials(u, v); err != nil {
			return err
		}
		ei, ej, found := t.enteringCell(u, v)
		if !found {
			return nil // optimal
		}
		cycle, err := t.findCycle(ei, ej)
		if err != nil {
			return err
		}
		t.pivot(cycle)
	}
	return fmt.Errorf("emd: simplex failed to converge in %d iterations", maxIter)
}

// potentials solves u[i] + v[j] = cost[i][j] over the basic cells by
// traversing the basis spanning tree from u[0] = 0.
func (t *tableau) potentials(u, v []float64) error {
	const unset = math.MaxFloat64
	for i := range u {
		u[i] = unset
	}
	for j := range v {
		v[j] = unset
	}
	u[0] = 0
	// Worklist of resolved nodes: rows are 0..m-1, columns m..m+n-1.
	queue := make([]int, 0, t.m+t.n)
	queue = append(queue, 0)
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		if node < t.m {
			i := node
			for j := 0; j < t.n; j++ {
				if t.basic[i][j] && v[j] == unset {
					v[j] = t.cost[i][j] - u[i]
					queue = append(queue, t.m+j)
				}
			}
		} else {
			j := node - t.m
			for i := 0; i < t.m; i++ {
				if t.basic[i][j] && u[i] == unset {
					u[i] = t.cost[i][j] - v[j]
					queue = append(queue, i)
				}
			}
		}
	}
	for i, x := range u {
		if x == unset {
			return fmt.Errorf("emd: basis not spanning: row %d unreached", i)
		}
	}
	for j, x := range v {
		if x == unset {
			return fmt.Errorf("emd: basis not spanning: column %d unreached", j)
		}
	}
	return nil
}

// enteringCell returns the first non-basic cell (row-major, Bland's rule)
// whose reduced cost is negative.
func (t *tableau) enteringCell(u, v []float64) (int, int, bool) {
	for i := 0; i < t.m; i++ {
		for j := 0; j < t.n; j++ {
			if t.basic[i][j] {
				continue
			}
			if t.cost[i][j]-u[i]-v[j] < -reducedCostTol {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// cell identifies one tableau position.
type cell struct{ i, j int }

// findCycle returns the unique alternating cycle formed by adding the
// entering cell (ei, ej) to the basis tree. The cycle starts at the
// entering cell and alternates row/column moves; even indices gain flow
// and odd indices lose it.
func (t *tableau) findCycle(ei, ej int) ([]cell, error) {
	// Find the tree path from row node ei to column node ej via DFS over
	// basic cells; prepending the entering cell closes the cycle.
	type frame struct {
		node int // row: 0..m-1, column: m..m+n-1
		path []cell
	}
	visited := make([]bool, t.m+t.n)
	stack := []frame{{node: ei}}
	visited[ei] = true
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.node == t.m+ej {
			return append([]cell{{ei, ej}}, f.path...), nil
		}
		if f.node < t.m {
			i := f.node
			for j := 0; j < t.n; j++ {
				if t.basic[i][j] && !visited[t.m+j] {
					visited[t.m+j] = true
					path := make([]cell, len(f.path), len(f.path)+1)
					copy(path, f.path)
					stack = append(stack, frame{node: t.m + j, path: append(path, cell{i, j})})
				}
			}
		} else {
			j := f.node - t.m
			for i := 0; i < t.m; i++ {
				if t.basic[i][j] && !visited[i] {
					visited[i] = true
					path := make([]cell, len(f.path), len(f.path)+1)
					copy(path, f.path)
					stack = append(stack, frame{node: i, path: append(path, cell{i, j})})
				}
			}
		}
	}
	return nil, fmt.Errorf("emd: no cycle for entering cell (%d,%d): basis is not a tree", ei, ej)
}

// pivot shifts θ = min flow over the cycle's losing cells around the
// cycle, moving the entering cell into the basis and the first saturated
// losing cell out.
func (t *tableau) pivot(cycle []cell) {
	theta := math.Inf(1)
	leave := -1
	for k := 1; k < len(cycle); k += 2 {
		c := cycle[k]
		if t.flow[c.i][c.j] < theta {
			theta = t.flow[c.i][c.j]
			leave = k
		}
	}
	for k, c := range cycle {
		if k%2 == 0 {
			t.flow[c.i][c.j] += theta
		} else {
			t.flow[c.i][c.j] -= theta
			if t.flow[c.i][c.j] < weightEps {
				t.flow[c.i][c.j] = math.Max(t.flow[c.i][c.j], 0)
			}
		}
	}
	enter := cycle[0]
	t.basic[enter.i][enter.j] = true
	out := cycle[leave]
	t.basic[out.i][out.j] = false
	t.flow[out.i][out.j] = 0
}

func (t *tableau) totalCost() float64 {
	var total float64
	for i := 0; i < t.m; i++ {
		for j := 0; j < t.n; j++ {
			if f := t.flow[i][j]; f > 0 {
				total += f * t.cost[i][j]
			}
		}
	}
	return total
}

// DistanceGeneral computes the EMD between two signatures under an
// arbitrary ground-distance function by solving the transportation
// problem directly. Weights are normalized to unit mass. It is
// asymptotically slower than Distance1D but works for any ground metric.
func DistanceGeneral(pos1, w1, pos2, w2 []float64, ground func(a, b float64) float64) (float64, error) {
	s1, err := newSignature(pos1, w1)
	if err != nil {
		return 0, fmt.Errorf("emd: signature 1: %w", err)
	}
	s2, err := newSignature(pos2, w2)
	if err != nil {
		return 0, fmt.Errorf("emd: signature 2: %w", err)
	}
	cost := make([][]float64, len(s1.pos))
	for i, p := range s1.pos {
		cost[i] = make([]float64, len(s2.pos))
		for j, q := range s2.pos {
			cost[i][j] = ground(p, q)
		}
	}
	_, total, err := Transport(s1.w, s2.w, cost)
	if err != nil {
		return 0, err
	}
	return total, nil
}
