package community

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"plotters/internal/flow"
)

// mkGraph builds a Graph directly from an edge list (host, host, weight)
// so tie configurations can be constructed exactly.
func mkGraph(t *testing.T, hosts []uint32, edges [][3]uint32) *Graph {
	t.Helper()
	g := &Graph{index: make(map[flow.IP]int, len(hosts))}
	for _, h := range hosts {
		g.hosts = append(g.hosts, ip(h))
	}
	for i := 1; i < len(g.hosts); i++ {
		if g.hosts[i] <= g.hosts[i-1] {
			t.Fatalf("mkGraph hosts must be ascending and unique")
		}
	}
	for i, h := range g.hosts {
		g.index[h] = i
	}
	g.adj = make([][]int32, len(g.hosts))
	g.wts = make([][]int32, len(g.hosts))
	for _, e := range edges {
		a, aok := g.index[ip(e[0])]
		b, bok := g.index[ip(e[1])]
		if !aok || !bok || a == b {
			t.Fatalf("mkGraph bad edge %v", e)
		}
		g.adj[a] = append(g.adj[a], int32(b))
		g.wts[a] = append(g.wts[a], int32(e[2]))
		g.adj[b] = append(g.adj[b], int32(a))
		g.wts[b] = append(g.wts[b], int32(e[2]))
		g.edges++
	}
	for v := range g.adj {
		sortAdj(g.adj[v], g.wts[v])
	}
	return g
}

// members flattens communities to label -> sorted members for compact
// expectations.
func members(cs []Community) map[uint32][]uint32 {
	out := make(map[uint32][]uint32, len(cs))
	for _, c := range cs {
		ms := make([]uint32, len(c.Members))
		for i, m := range c.Members {
			ms[i] = uint32(m)
		}
		out[uint32(c.Label)] = ms
	}
	return out
}

// Known tie configurations must resolve identically on every run: equal
// neighbor votes adopt the smallest label, oscillation-prone structures
// still settle deterministically under the iteration cap.
func TestPropagateDeterministicTies(t *testing.T) {
	cases := []struct {
		name  string
		hosts []uint32
		edges [][3]uint32
		want  map[uint32][]uint32
	}{
		{
			// A path 1-2-3 with equal weights: vertex 2 sees labels
			// {1,3} tied, adopts 1; then 3 follows.
			name:  "path tie resolves to smallest label",
			hosts: []uint32{1, 2, 3},
			edges: [][3]uint32{{1, 2, 5}, {2, 3, 5}},
			want:  map[uint32][]uint32{1: {1, 2, 3}},
		},
		{
			// Two triangles bridged by one weak edge stay two
			// communities: the bridge vote (1) never outweighs the
			// in-triangle votes (2 each).
			name:  "bridged triangles stay separate",
			hosts: []uint32{1, 2, 3, 10, 11, 12},
			edges: [][3]uint32{
				{1, 2, 4}, {2, 3, 4}, {1, 3, 4},
				{10, 11, 4}, {11, 12, 4}, {10, 12, 4},
				{3, 10, 1},
			},
			want: map[uint32][]uint32{1: {1, 2, 3}, 10: {10, 11, 12}},
		},
		{
			// A 4-cycle is the classic label-propagation oscillator
			// under synchronous updates; the sequential sweep collapses
			// it to one community immediately.
			name:  "four-cycle does not oscillate",
			hosts: []uint32{1, 2, 3, 4},
			edges: [][3]uint32{{1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 1, 1}},
			want:  map[uint32][]uint32{1: {1, 2, 3, 4}},
		},
		{
			// Weight beats count: host 5 has two light edges into the
			// 1-community but one heavy edge to 9 — the weighted vote
			// pulls it to 9's side.
			name:  "weighted vote wins",
			hosts: []uint32{1, 2, 5, 9},
			edges: [][3]uint32{{1, 2, 9}, {1, 5, 1}, {2, 5, 1}, {5, 9, 5}},
			want:  map[uint32][]uint32{1: {1, 2}, 5: {5, 9}},
		},
		{
			// Isolated vertices stay singletons.
			name:  "isolates are singletons",
			hosts: []uint32{1, 2, 7},
			edges: [][3]uint32{{1, 2, 3}},
			want:  map[uint32][]uint32{1: {1, 2}, 7: {7}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := mkGraph(t, tc.hosts, tc.edges)
			ref := Propagate(g, 0)
			if got := members(ref); !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("communities = %v, want %v", got, tc.want)
			}
			for run := 0; run < 50; run++ {
				if again := Propagate(g, 0); !reflect.DeepEqual(again, ref) {
					t.Fatalf("run %d diverged:\n%v\nvs\n%v", run, again, ref)
				}
			}
		})
	}
}

// Propagation is sequential by construction, so the partition must be
// identical at every GOMAXPROCS setting, and concurrent Propagate calls
// on one shared graph must not race (the -race matrix runs this test).
func TestPropagateParallelCallsAgree(t *testing.T) {
	g := mkGraph(t, []uint32{1, 2, 3, 10, 11, 12},
		[][3]uint32{
			{1, 2, 4}, {2, 3, 4}, {1, 3, 4},
			{10, 11, 4}, {11, 12, 4}, {10, 12, 4},
			{3, 10, 1},
		})
	ref := Propagate(g, 0)
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		results := make([][]Community, 8)
		var wg sync.WaitGroup
		for i := range results {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = Propagate(g, 0)
			}(i)
		}
		wg.Wait()
		runtime.GOMAXPROCS(prev)
		for i, r := range results {
			if !reflect.DeepEqual(r, ref) {
				t.Fatalf("GOMAXPROCS=%d goroutine %d diverged:\n%v\nvs\n%v", procs, i, r, ref)
			}
		}
	}
}

// Community scoring accessors on hand-built communities.
func TestCommunityScores(t *testing.T) {
	g := mkGraph(t, []uint32{1, 2, 3}, [][3]uint32{{1, 2, 4}, {2, 3, 4}, {1, 3, 4}})
	cs := Propagate(g, 0)
	if len(cs) != 1 {
		t.Fatalf("communities = %d, want 1", len(cs))
	}
	c := cs[0]
	if c.InternalEdges != 3 || c.SharedContacts != 12 {
		t.Errorf("InternalEdges=%d SharedContacts=%d, want 3 and 12", c.InternalEdges, c.SharedContacts)
	}
	if c.AvgDegree() != 2 {
		t.Errorf("AvgDegree() = %v, want 2", c.AvgDegree())
	}
	if c.AvgSharedContacts() != 4 {
		t.Errorf("AvgSharedContacts() = %v, want 4", c.AvgSharedContacts())
	}
	var zero Community
	if zero.AvgDegree() != 0 || zero.AvgSharedContacts() != 0 {
		t.Error("zero community must score 0")
	}
}
