package community

import (
	"fmt"
	"math/rand"
	"testing"

	"plotters/internal/flow"
)

// benchContacts plants ~n/64 rendezvous groups of 16 hosts over a
// shared destination pool plus per-host background noise — the shape a
// campus window hands the detector.
func benchContacts(n int) map[flow.IP][]flow.IP {
	rng := rand.New(rand.NewSource(17))
	contacts := make(map[flow.IP][]flow.IP, n)
	for h := 0; h < n; h++ {
		seen := make(map[flow.IP]bool)
		var dsts []flow.IP
		addDst := func(d flow.IP) {
			if !seen[d] {
				seen[d] = true
				dsts = append(dsts, d)
			}
		}
		if h%4 == 0 {
			// Rendezvous member: 8 destinations from the group pool.
			group := flow.IP(h / 64)
			for k := 0; k < 8; k++ {
				addDst(flow.IP(1_000_000) + group*100 + flow.IP(rng.Intn(20)))
			}
		}
		// Background: 24 destinations from a large shared pool.
		for k := 0; k < 24; k++ {
			addDst(flow.IP(2_000_000 + rng.Intn(n*8)))
		}
		contacts[flow.IP(h+1)] = dsts
	}
	return contacts
}

// BenchmarkCommunityGraph measures graph construction plus label
// propagation end to end, reporting edges/s for the bench-smoke step
// summary.
func BenchmarkCommunityGraph(b *testing.B) {
	cfg := GraphConfig{MinSharedContacts: 3, MaxFanIn: 64}
	for _, n := range []int{1024, 4096} {
		contacts := benchContacts(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var edges int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := BuildGraph(contacts, cfg)
				if err != nil {
					b.Fatal(err)
				}
				Propagate(g, 0)
				edges = g.Edges()
			}
			if edges == 0 {
				b.Fatal("benchmark graph has no edges; planted groups missing")
			}
			b.ReportMetric(float64(edges)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}
