package community

import (
	"fmt"
	"sort"

	"plotters/internal/core"
	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// Name is the community detector's stable identifier.
const Name = "community"

// Config tunes the community detector. The zero value is invalid; use
// DefaultConfig.
type Config struct {
	// Graph tunes mutual-contact graph construction.
	Graph GraphConfig
	// MaxIterations bounds label-propagation sweeps (0 = default).
	MaxIterations int
	// MinCommunitySize is the smallest community worth flagging. Pairs
	// and singletons carry no coordination evidence — two roommates
	// seeding the same torrent form a 2-community all day.
	MinCommunitySize int
	// MinAvgDegree is the average internal degree a community must reach
	// to be flagged: bots rendezvousing with one shared peer population
	// form near-cliques (avg degree → size-1), while incidental overlap
	// produces sparse chains.
	MinAvgDegree float64
	// Metrics, when non-nil, receives graph-size gauges and per-stage
	// wall times from every run (community/graph_hosts, graph_edges,
	// communities, suspects; community/build, propagate, score). Nil
	// disables instrumentation at zero cost.
	Metrics *metrics.Registry
}

// DefaultConfig returns the detector's default operating point, tuned on
// the synthesized campus corpus: an edge takes 3 shared destinations,
// destinations contacted by more than 64 monitored hosts are treated as
// popular services, and a flagged community has at least 3 members
// averaging 2 mutual-contact partners each.
func DefaultConfig() Config {
	return Config{
		Graph:            GraphConfig{MinSharedContacts: 3, MaxFanIn: 64},
		MinCommunitySize: 3,
		MinAvgDegree:     2,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Graph.Validate(); err != nil {
		return err
	}
	if c.MaxIterations < 0 {
		return fmt.Errorf("community: MaxIterations = %d must be >= 0 (0 = default)", c.MaxIterations)
	}
	if c.MinCommunitySize < 1 {
		return fmt.Errorf("community: MinCommunitySize = %d must be >= 1", c.MinCommunitySize)
	}
	if c.MinAvgDegree < 0 {
		return fmt.Errorf("community: MinAvgDegree = %v must be >= 0", c.MinAvgDegree)
	}
	return nil
}

// Report is the detector's full per-window outcome, attached to the
// emitted core.Detection as Details.
type Report struct {
	// GraphHosts and GraphEdges size the mutual-contact graph.
	GraphHosts, GraphEdges int
	// Communities holds every detected community, sorted by label.
	Communities []Community
	// Flagged holds the labels of the communities whose members were
	// emitted as suspects, in ascending order.
	Flagged []flow.IP
}

// Detector implements core.Detector with mutual-contact community
// analysis.
type Detector struct {
	cfg Config
}

// New creates a community detector at the given operating point.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Name implements core.Detector.
func (d *Detector) Name() string { return Name }

// Config returns the detector's operating point.
func (d *Detector) Config() Config { return d.cfg }

// Detect implements core.Detector: build the mutual-contact graph from
// the source's contact sets, propagate community labels, and flag the
// communities that are both large and dense enough. The source must
// track contact sets (every flow.FeatureSource implementation does;
// ContactSource is the seam).
func (d *Detector) Detect(src flow.FeatureSource) (*core.Detection, error) {
	cs, ok := src.(flow.ContactSource)
	if !ok {
		return nil, fmt.Errorf("community: feature source %T does not track contact sets", src)
	}
	contacts := cs.Contacts()
	if contacts == nil {
		return nil, fmt.Errorf("community: feature source %T has no contact sets attached", src)
	}
	reg := d.cfg.Metrics

	t := reg.StartStage("community/build")
	g, err := BuildGraph(contacts, d.cfg.Graph)
	t.Stop()
	if err != nil {
		return nil, err
	}
	reg.Gauge("community/graph_hosts").Set(int64(g.Hosts()))
	reg.Gauge("community/graph_edges").Set(int64(g.Edges()))

	t = reg.StartStage("community/propagate")
	comms := Propagate(g, d.cfg.MaxIterations)
	t.Stop()
	reg.Gauge("community/communities").Set(int64(len(comms)))

	t = reg.StartStage("community/score")
	rep := &Report{GraphHosts: g.Hosts(), GraphEdges: g.Edges(), Communities: comms}
	suspects := make(core.HostSet)
	for i := range comms {
		c := &comms[i]
		if len(c.Members) < d.cfg.MinCommunitySize || c.AvgDegree() < d.cfg.MinAvgDegree {
			continue
		}
		rep.Flagged = append(rep.Flagged, c.Label)
		for _, h := range c.Members {
			suspects[h] = true
		}
	}
	sort.Slice(rep.Flagged, func(i, j int) bool { return rep.Flagged[i] < rep.Flagged[j] })
	t.Stop()
	reg.Gauge("community/suspects").Set(int64(len(suspects)))

	return &core.Detection{
		Detector: d.Name(),
		Suspects: suspects,
		Details:  rep,
	}, nil
}
