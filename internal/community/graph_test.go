package community

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"plotters/internal/flow"
)

// ip is shorthand for test addresses.
func ip(v uint32) flow.IP { return flow.IP(v) }

// contactsFixture: hosts 1,2,3 share destinations; host 4 overlaps too
// little; destination 99 is popular (contacted by everyone).
func contactsFixture() map[flow.IP][]flow.IP {
	return map[flow.IP][]flow.IP{
		ip(1): {ip(100), ip(101), ip(102), ip(99)},
		ip(2): {ip(100), ip(101), ip(102), ip(103), ip(99)},
		ip(3): {ip(101), ip(102), ip(103), ip(99)},
		ip(4): {ip(100), ip(200), ip(99)},
	}
}

func TestBuildGraphFixture(t *testing.T) {
	g, err := BuildGraph(contactsFixture(), GraphConfig{MinSharedContacts: 2, MaxFanIn: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Hosts() != 4 {
		t.Errorf("Hosts() = %d, want 4", g.Hosts())
	}
	// 1-2 share {100,101,102}, 1-3 share {101,102}, 2-3 share
	// {101,102,103}. Host 4 shares only {100} with 1 and 2 — below
	// threshold. Destination 99 has fan-in 4 > MaxFanIn, so it counts
	// toward nothing.
	if g.Edges() != 3 {
		t.Errorf("Edges() = %d, want 3", g.Edges())
	}
	want := map[[2]uint32]int{
		{1, 2}: 3, {1, 3}: 2, {2, 3}: 3,
	}
	for pair, w := range want {
		if got := g.Weight(ip(pair[0]), ip(pair[1])); got != w {
			t.Errorf("Weight(%d,%d) = %d, want %d", pair[0], pair[1], got, w)
		}
		if got := g.Weight(ip(pair[1]), ip(pair[0])); got != w {
			t.Errorf("Weight(%d,%d) = %d, want %d (symmetric)", pair[1], pair[0], got, w)
		}
	}
	if g.Weight(ip(1), ip(4)) != 0 {
		t.Errorf("Weight(1,4) = %d, want 0 (below threshold)", g.Weight(ip(1), ip(4)))
	}
	if g.Degree(ip(2)) != 2 || g.Degree(ip(4)) != 0 {
		t.Errorf("Degree(2) = %d (want 2), Degree(4) = %d (want 0)", g.Degree(ip(2)), g.Degree(ip(4)))
	}
	if g.Degree(ip(77)) != 0 {
		t.Errorf("Degree of unknown host = %d, want 0", g.Degree(ip(77)))
	}
}

func TestBuildGraphFanInUncapped(t *testing.T) {
	// With the cap off, the popular destination 99 links everyone, but
	// one shared destination stays below MinSharedContacts=2 for host 4.
	g, err := BuildGraph(contactsFixture(), GraphConfig{MinSharedContacts: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 99 now adds 1 to every pair: 1-2=4, 1-3=3, 2-3=4, 1-4=2, 2-4=2, 3-4=1.
	if g.Edges() != 5 {
		t.Errorf("Edges() = %d, want 5", g.Edges())
	}
	if g.Weight(ip(1), ip(4)) != 2 {
		t.Errorf("Weight(1,4) = %d, want 2", g.Weight(ip(1), ip(4)))
	}
}

// With IDF weighting on, topology is untouched but weights follow
// destination rarity: a destination shared by fewer hosts outweighs a
// widely-shared one.
func TestBuildGraphIDFWeights(t *testing.T) {
	raw, err := BuildGraph(contactsFixture(), GraphConfig{MinSharedContacts: 2, MaxFanIn: 3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(contactsFixture(), GraphConfig{MinSharedContacts: 2, MaxFanIn: 3, IDFWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Hosts() != raw.Hosts() || g.Edges() != raw.Edges() {
		t.Fatalf("IDF weighting changed topology: hosts %d/%d edges %d/%d",
			g.Hosts(), raw.Hosts(), g.Edges(), raw.Edges())
	}
	if !reflect.DeepEqual(g.adj, raw.adj) {
		t.Error("IDF weighting changed adjacency — it must only touch weights")
	}
	// Fixture fan-ins under the cap: 100→{1,2,4} (3 hosts), 101,102→{1,2,3}
	// (3 hosts), 103→{2,3} (2 hosts). With 4 monitored hosts,
	// idf(fanin=2) = log(2) > idf(fanin=3) = log(4/3). Pair 2-3 shares
	// {101,102,103} and pair 1-2 shares {100,101,102}: same raw count 3,
	// but 2-3 holds the rarer 103, so its IDF weight must be strictly
	// higher (3·log(4/3) ≈ 221 fixed-point units vs
	// 2·log(4/3)+log(2) ≈ 324).
	w12, w23 := g.Weight(ip(1), ip(2)), g.Weight(ip(2), ip(3))
	if raw.Weight(ip(1), ip(2)) != raw.Weight(ip(2), ip(3)) {
		t.Fatal("fixture drifted: raw weights of 1-2 and 2-3 should tie")
	}
	if w23 <= w12 {
		t.Errorf("IDF weight of pair sharing a rarer destination = %d, want > %d", w23, w12)
	}
	if w12 < 1 || w23 < 1 {
		t.Errorf("IDF weights must stay >= 1, got %d and %d", w12, w23)
	}
}

// An edge whose every shared destination is maximally popular (fan-in =
// monitored hosts, IDF 0) still carries the clamp weight 1.
func TestBuildGraphIDFClampsToOne(t *testing.T) {
	contacts := map[flow.IP][]flow.IP{
		ip(1): {ip(100), ip(101)},
		ip(2): {ip(100), ip(101)},
	}
	g, err := BuildGraph(contacts, GraphConfig{MinSharedContacts: 2, IDFWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 1 || g.Weight(ip(1), ip(2)) != 1 {
		t.Errorf("edges=%d weight=%d, want 1 edge of clamped weight 1", g.Edges(), g.Weight(ip(1), ip(2)))
	}
}

func TestBuildGraphValidates(t *testing.T) {
	if _, err := BuildGraph(nil, GraphConfig{MinSharedContacts: 0}); err == nil {
		t.Error("MinSharedContacts=0 accepted")
	}
	if _, err := BuildGraph(nil, GraphConfig{MinSharedContacts: 1, MaxFanIn: -1}); err == nil {
		t.Error("negative MaxFanIn accepted")
	}
}

// graphsEqual compares two graphs structurally.
func graphsEqual(a, b *Graph) bool {
	return reflect.DeepEqual(a.hosts, b.hosts) &&
		a.edges == b.edges &&
		reflect.DeepEqual(a.adj, b.adj) &&
		reflect.DeepEqual(a.wts, b.wts)
}

// randomContacts draws a small random contact structure with planted
// overlap: hosts pick destinations from a shared pool, so some pairs
// clear the edge threshold.
func randomContacts(rng *rand.Rand) map[flow.IP][]flow.IP {
	hosts := 2 + rng.Intn(20)
	pool := 3 + rng.Intn(25)
	contacts := make(map[flow.IP][]flow.IP, hosts)
	for h := 0; h < hosts; h++ {
		seen := make(map[flow.IP]bool)
		var dsts []flow.IP
		for k := rng.Intn(12); k >= 0; k-- {
			d := ip(uint32(1000 + rng.Intn(pool)))
			if !seen[d] {
				seen[d] = true
				dsts = append(dsts, d)
			}
		}
		contacts[ip(uint32(h+1))] = dsts
	}
	return contacts
}

// Property: graph construction is independent of the order destinations
// appear inside each host's contact list (i.e. of ingestion order).
func TestGraphContactOrderIndependenceProperty(t *testing.T) {
	cfg := GraphConfig{MinSharedContacts: 2, MaxFanIn: 16}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		contacts := randomContacts(rng)
		ref, err := BuildGraph(contacts, cfg)
		if err != nil {
			return false
		}
		shuffled := make(map[flow.IP][]flow.IP, len(contacts))
		for h, dsts := range contacts {
			p := make([]flow.IP, len(dsts))
			copy(p, dsts)
			rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
			shuffled[h] = p
		}
		g, err := BuildGraph(shuffled, cfg)
		if err != nil {
			return false
		}
		return graphsEqual(ref, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// propertyRecords draws start-ordered records over a small host and
// destination population, dense enough that mutual-contact edges form.
func propertyRecords(rng *rand.Rand, n int) []flow.Record {
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	records := make([]flow.Record, n)
	for i := range records {
		base = base.Add(time.Duration(1+rng.Intn(400)) * time.Millisecond)
		records[i] = flow.Record{
			Src:      ip(uint32(1 + rng.Intn(12))),
			Dst:      ip(uint32(500 + rng.Intn(30))),
			Start:    base,
			End:      base.Add(time.Second),
			Proto:    flow.TCP,
			SrcBytes: 100,
			State:    flow.StateEstablished,
		}
	}
	return records
}

// Property: any shard split of the feature source merges to the graph a
// single-source extraction produces — the sharded windowed path and the
// batch path feed the detector identical graphs.
func TestGraphShardSplitProperty(t *testing.T) {
	cfg := GraphConfig{MinSharedContacts: 2, MaxFanIn: 16}
	f := func(seed int64, shardBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		records := propertyRecords(rng, 300+rng.Intn(300))
		shards := 1 + int(shardBits%8)

		batch := flow.ExtractFeatureSet(records, flow.FeatureOptions{}, flow.Window{})
		ref, err := BuildGraph(batch.Contacts(), cfg)
		if err != nil {
			return false
		}

		sh := flow.NewShardedExtractor(flow.FeatureOptions{}, shards)
		for i := range records {
			if err := sh.Add(&records[i]); err != nil {
				return false
			}
		}
		g, err := BuildGraph(sh.Contacts(), cfg)
		if err != nil {
			return false
		}
		return graphsEqual(ref, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
