package community

import (
	"testing"
	"time"

	"plotters/internal/core"
	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// rendezvousRecords synthesizes a window where hosts 1..4 all contact
// the same 6 rendezvous destinations (a botnet community), while hosts
// 20..23 each talk to their own disjoint destinations (independent
// traders).
func rendezvousRecords() []flow.Record {
	base := time.Date(2026, 3, 1, 9, 0, 0, 0, time.UTC)
	var records []flow.Record
	add := func(src, dst uint32) {
		base = base.Add(time.Second)
		records = append(records, flow.Record{
			Src: ip(src), Dst: ip(dst),
			Start: base, End: base.Add(time.Second),
			Proto: flow.TCP, SrcBytes: 80, State: flow.StateEstablished,
		})
	}
	for bot := uint32(1); bot <= 4; bot++ {
		for peer := uint32(0); peer < 6; peer++ {
			add(bot, 900+peer)
		}
	}
	for trader := uint32(20); trader <= 23; trader++ {
		for peer := uint32(0); peer < 6; peer++ {
			add(trader, 2000+trader*100+peer)
		}
	}
	return records
}

func TestDetectorFlagsRendezvousCommunity(t *testing.T) {
	reg := metrics.New()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if det.Name() != Name {
		t.Errorf("Name() = %q, want %q", det.Name(), Name)
	}
	src := flow.ExtractFeatureSet(rendezvousRecords(), flow.FeatureOptions{}, flow.Window{})
	d, err := det.Detect(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Detector != Name {
		t.Errorf("Detection.Detector = %q, want %q", d.Detector, Name)
	}
	want := core.NewHostSet(ip(1), ip(2), ip(3), ip(4))
	if len(d.Suspects) != len(want) {
		t.Fatalf("suspects = %v, want %v", d.Suspects.Sorted(), want.Sorted())
	}
	for h := range want {
		if !d.Suspects[h] {
			t.Errorf("host %v missing from suspects", h)
		}
	}
	rep, ok := d.Details.(*Report)
	if !ok {
		t.Fatalf("Details is %T, want *Report", d.Details)
	}
	if rep.GraphHosts != 8 {
		t.Errorf("GraphHosts = %d, want 8", rep.GraphHosts)
	}
	// The 4 bots form a clique: C(4,2) = 6 edges; traders contribute none.
	if rep.GraphEdges != 6 {
		t.Errorf("GraphEdges = %d, want 6", rep.GraphEdges)
	}
	if len(rep.Flagged) != 1 || rep.Flagged[0] != ip(1) {
		t.Errorf("Flagged = %v, want [1]", rep.Flagged)
	}
	// Metrics must reflect the run.
	snapshot := map[string]int64{
		"community/graph_hosts": 8,
		"community/graph_edges": 6,
		"community/suspects":    4,
	}
	for name, want := range snapshot {
		if got := reg.Gauge(name).Value(); got != want {
			t.Errorf("gauge %s = %d, want %d", name, got, want)
		}
	}
	if reg.Gauge("community/communities").Value() == 0 {
		t.Error("gauge community/communities not set")
	}
	for _, stage := range []string{"community/build", "community/propagate", "community/score"} {
		if reg.Stage(stage).Count() != 1 {
			t.Errorf("stage %s ran %d times, want 1", stage, reg.Stage(stage).Count())
		}
	}
}

// A source without contact tracking must fail loudly, not silently
// return an empty verdict.
func TestDetectorRejectsContactlessSource(t *testing.T) {
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect(flow.NewFeatureSet(nil, flow.Window{})); err == nil {
		t.Error("nil-contact FeatureSet accepted")
	}
	if _, err := det.Detect(contactlessSource{}); err == nil {
		t.Error("non-ContactSource accepted")
	}
}

type contactlessSource struct{}

func (contactlessSource) Features() map[flow.IP]*flow.HostFeatures { return nil }
func (contactlessSource) Window() flow.Window                      { return flow.Window{} }

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Graph.MinSharedContacts = 0 },
		func(c *Config) { c.Graph.MaxFanIn = -1 },
		func(c *Config) { c.MaxIterations = -1 },
		func(c *Config) { c.MinCommunitySize = 0 },
		func(c *Config) { c.MinAvgDegree = -0.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
