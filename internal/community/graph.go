// Package community implements the second detector of the multi-detector
// framework: mutual-contact community analysis. Where the paper's
// FindPlotters pipeline (internal/core) tells Plotters apart by *how*
// each host talks — failure rate, volume, churn, timer structure — this
// detector looks at *whom* sets of hosts talk to. Bots of one botnet
// rendezvous with the same command-and-control peer population, so their
// contacted-destination sets overlap far more than independent
// file-sharing traders, whose swarms churn apart. The detector builds a
// destination-overlap graph over the window's monitored hosts, finds
// communities with deterministic label propagation, and flags the dense
// ones.
//
// Everything here is deterministic in the contact sets alone: the same
// window of records produces the same graph, communities, and suspect
// set whatever accumulation path (batch, streamed, sharded, merged
// panes) built them.
package community

import (
	"fmt"
	"math"
	"sort"

	"plotters/internal/flow"
)

// GraphConfig tunes mutual-contact graph construction.
type GraphConfig struct {
	// MinSharedContacts is the number of distinct destinations two hosts
	// must both have contacted for an edge between them. Below it, the
	// overlap is indistinguishable from two independent hosts hitting
	// the same popular services.
	MinSharedContacts int
	// MaxFanIn skips destinations contacted by more than this many
	// monitored hosts when counting shared contacts: a destination half
	// the campus talks to (a DNS resolver, a portal) carries no
	// rendezvous signal and would otherwise contribute O(fanin²) pairs.
	// 0 means no cap.
	MaxFanIn int
	// IDFWeights switches edge weights from raw shared-contact counts to
	// destination-rarity sums: each shared destination contributes
	// log(hosts/fanin), in units of 1/256 (fixed point, so accumulation
	// stays integer and order-independent), instead of 1. A destination
	// only two hosts share outweighs one that half the monitored
	// population below the fan-in cap also visits, sharpening the
	// rendezvous signal without moving the MaxFanIn cliff. Edge
	// *existence* still requires MinSharedContacts raw shared
	// destinations, so the graph topology is identical either way; only
	// the weights label propagation and the community shared-contact
	// sums see change. Default off.
	IDFWeights bool
}

// idfScale is the fixed-point scale for IDF edge weights: weights
// accumulate as int32 multiples of 1/idfScale, keeping BuildGraph free
// of float accumulation order effects (integer addition commutes; the
// per-destination log is computed once).
const idfScale = 256

// Validate checks the configuration.
func (c *GraphConfig) Validate() error {
	if c.MinSharedContacts < 1 {
		return fmt.Errorf("community: MinSharedContacts = %d must be >= 1", c.MinSharedContacts)
	}
	if c.MaxFanIn < 0 {
		return fmt.Errorf("community: MaxFanIn = %d must be >= 0 (0 = uncapped)", c.MaxFanIn)
	}
	return nil
}

// Graph is the mutual-contact graph of one detection window: one vertex
// per monitored host, an undirected weighted edge between every pair of
// hosts whose contacted-destination sets share at least
// MinSharedContacts members. Vertices are indexed by position in the
// ascending host list, so all iteration is deterministic.
type Graph struct {
	hosts []flow.IP       // ascending
	index map[flow.IP]int // host -> vertex
	adj   [][]int32       // per-vertex neighbor lists, ascending
	wts   [][]int32       // shared-contact count per neighbor, parallel to adj
	edges int
}

// BuildGraph constructs the mutual-contact graph from per-host contact
// sets (each host's contacted destinations; order inside a set does not
// matter). The construction is an inverted index pass — destination →
// contacting hosts — followed by pair counting, so cost scales with the
// overlap actually present, not with hosts².
func BuildGraph(contacts map[flow.IP][]flow.IP, cfg GraphConfig) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{
		hosts: make([]flow.IP, 0, len(contacts)),
		index: make(map[flow.IP]int, len(contacts)),
	}
	for h := range contacts {
		g.hosts = append(g.hosts, h)
	}
	sort.Slice(g.hosts, func(i, j int) bool { return g.hosts[i] < g.hosts[j] })
	for i, h := range g.hosts {
		g.index[h] = i
	}

	// Invert: destination -> ascending vertex list of contacting hosts.
	inv := make(map[flow.IP][]int32)
	for i, h := range g.hosts {
		for _, dst := range contacts[h] {
			inv[dst] = append(inv[dst], int32(i))
		}
	}

	// Count shared contacts per host pair. Destinations contacted by one
	// host pair nothing; destinations above the fan-in cap are popular
	// services, not rendezvous points. With IDFWeights a second
	// accumulator sums each destination's rarity instead of 1, but the
	// raw count still decides edge existence.
	pairs := make(map[uint64]int32)
	var idf map[uint64]int64
	if cfg.IDFWeights {
		idf = make(map[uint64]int64)
	}
	for _, hs := range inv {
		if len(hs) < 2 || (cfg.MaxFanIn > 0 && len(hs) > cfg.MaxFanIn) {
			continue
		}
		var rarity int64
		if cfg.IDFWeights {
			rarity = int64(math.Round(math.Log(float64(len(g.hosts))/float64(len(hs))) * idfScale))
		}
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
		for i := 0; i < len(hs); i++ {
			for j := i + 1; j < len(hs); j++ {
				key := uint64(hs[i])<<32 | uint64(hs[j])
				pairs[key]++
				if cfg.IDFWeights {
					idf[key] += rarity
				}
			}
		}
	}

	g.adj = make([][]int32, len(g.hosts))
	g.wts = make([][]int32, len(g.hosts))
	for key, n := range pairs {
		if int(n) < cfg.MinSharedContacts {
			continue
		}
		w := n
		if cfg.IDFWeights {
			// Keep the weight in fixed-point units — rounding to whole
			// units would collapse most rarity distinctions — clamped to 1
			// so a qualifying edge always carries a vote even when every
			// shared destination is campus-wide popular (idf ≈ 0).
			w = int32(idf[key])
			if w < 1 {
				w = 1
			}
		}
		a, b := int32(key>>32), int32(key&0xffffffff)
		g.adj[a] = append(g.adj[a], b)
		g.wts[a] = append(g.wts[a], w)
		g.adj[b] = append(g.adj[b], a)
		g.wts[b] = append(g.wts[b], w)
		g.edges++
	}
	for v := range g.adj {
		sortAdj(g.adj[v], g.wts[v])
	}
	return g, nil
}

// sortAdj sorts a neighbor list ascending, keeping weights parallel.
func sortAdj(adj, wts []int32) {
	idx := make([]int, len(adj))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return adj[idx[i]] < adj[idx[j]] })
	na := make([]int32, len(adj))
	nw := make([]int32, len(wts))
	for i, k := range idx {
		na[i] = adj[k]
		nw[i] = wts[k]
	}
	copy(adj, na)
	copy(wts, nw)
}

// Hosts returns the vertex count.
func (g *Graph) Hosts() int { return len(g.hosts) }

// Edges returns the undirected edge count.
func (g *Graph) Edges() int { return g.edges }

// Host returns the address of vertex v.
func (g *Graph) Host(v int) flow.IP { return g.hosts[v] }

// Degree returns how many mutual-contact neighbors a host has (0 for
// unknown hosts).
func (g *Graph) Degree(h flow.IP) int {
	v, ok := g.index[h]
	if !ok {
		return 0
	}
	return len(g.adj[v])
}

// Weight returns the edge weight between two hosts (0 if no edge): the
// shared-contact count, or the rounded destination-rarity sum when the
// graph was built with IDFWeights.
func (g *Graph) Weight(a, b flow.IP) int {
	va, ok := g.index[a]
	if !ok {
		return 0
	}
	vb, ok := g.index[b]
	if !ok {
		return 0
	}
	for i, n := range g.adj[va] {
		if n == int32(vb) {
			return int(g.wts[va][i])
		}
	}
	return 0
}
