package community

import "plotters/internal/flow"

// DefaultMaxIterations bounds label-propagation sweeps. Propagation on
// real graphs converges in a handful of sweeps; the cap only guards
// against the oscillation pathological bipartite structures can sustain.
const DefaultMaxIterations = 64

// Community is one detected host group, canonically labeled by its
// smallest member address.
type Community struct {
	// Label is the community's canonical identifier: the smallest member.
	Label flow.IP
	// Members lists the community's hosts in ascending address order.
	Members []flow.IP
	// InternalEdges counts edges with both endpoints in the community.
	InternalEdges int
	// SharedContacts sums the shared-contact weight of internal edges.
	SharedContacts int
}

// AvgDegree returns the community's average internal degree — the
// density signal the detector scores on. Singletons score 0.
func (c *Community) AvgDegree() float64 {
	if len(c.Members) == 0 {
		return 0
	}
	return 2 * float64(c.InternalEdges) / float64(len(c.Members))
}

// AvgSharedContacts returns the mean shared-contact weight per internal
// edge (0 for edgeless communities).
func (c *Community) AvgSharedContacts() float64 {
	if c.InternalEdges == 0 {
		return 0
	}
	return float64(c.SharedContacts) / float64(c.InternalEdges)
}

// Propagate partitions the graph into communities by label propagation,
// made fully deterministic: sweeps are sequential and asynchronous in
// ascending host-address order, each vertex adopts the label most
// frequent among its neighbors (weighted by shared-contact count), and
// ties break toward the smallest label. No randomness, no map-iteration
// order, no goroutine interleaving — the same graph always yields the
// same partition, which the golden and -race determinism tests pin.
//
// maxIterations <= 0 means DefaultMaxIterations. Isolated vertices end
// as singleton communities. The result is sorted by label.
func Propagate(g *Graph, maxIterations int) []Community {
	if maxIterations <= 0 {
		maxIterations = DefaultMaxIterations
	}
	n := len(g.hosts)
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}

	votes := make(map[int32]int64)
	for iter := 0; iter < maxIterations; iter++ {
		changed := false
		for v := 0; v < n; v++ { // ascending host order: hosts is sorted
			if len(g.adj[v]) == 0 {
				continue
			}
			clear(votes)
			for i, nb := range g.adj[v] {
				votes[labels[nb]] += int64(g.wts[v][i])
			}
			best := labels[v]
			var bestN int64 = -1
			for l, cnt := range votes {
				if cnt > bestN || (cnt == bestN && l < best) {
					best, bestN = l, cnt
				}
			}
			if best != labels[v] {
				labels[v] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Canonicalize: group by final label, then relabel each group by its
	// smallest member address (vertex order is address order, so the
	// first member seen is the smallest).
	groups := make(map[int32][]int32, n)
	for v := 0; v < n; v++ {
		groups[labels[v]] = append(groups[labels[v]], int32(v))
	}
	out := make([]Community, 0, len(groups))
	for _, vs := range groups {
		c := Community{Label: g.hosts[vs[0]], Members: make([]flow.IP, len(vs))}
		member := make(map[int32]bool, len(vs))
		for i, v := range vs {
			c.Members[i] = g.hosts[v]
			member[v] = true
		}
		for _, v := range vs {
			for i, nb := range g.adj[v] {
				if nb > v && member[nb] { // count each internal edge once
					c.InternalEdges++
					c.SharedContacts += int(g.wts[v][i])
				}
			}
		}
		out = append(out, c)
	}
	// Map iteration above is unordered; sort by canonical label for a
	// deterministic result.
	sortCommunities(out)
	return out
}

func sortCommunities(cs []Community) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Label < cs[j-1].Label; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
