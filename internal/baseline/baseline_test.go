package baseline

import (
	"math/rand"
	"testing"
	"time"

	"plotters/internal/flow"
)

func t0() time.Time {
	return time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
}

func rec(src, dst flow.IP, at time.Time, state flow.ConnState) flow.Record {
	return flow.Record{
		Src: src, Dst: dst, SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
		Start: at, End: at.Add(time.Second),
		SrcPkts: 1, DstPkts: 1, SrcBytes: 100, DstBytes: 100, State: state,
	}
}

func TestTDGConfigValidate(t *testing.T) {
	good := DefaultTDGConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TDGConfig{
		{MinAvgDegree: 0, MinInOutFraction: 0.1, MinComponentSize: 5},
		{MinAvgDegree: 2, MinInOutFraction: -1, MinComponentSize: 5},
		{MinAvgDegree: 2, MinInOutFraction: 2, MinComponentSize: 5},
		{MinAvgDegree: 2, MinInOutFraction: 0.1, MinComponentSize: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestTDGSeparatesShapes builds two components: a client-server star
// (hub with many one-way clients) and a P2P mesh where peers both
// initiate and accept. Only the mesh must be flagged.
func TestTDGSeparatesShapes(t *testing.T) {
	var records []flow.Record
	at := t0()

	// Star: 20 clients -> one server; clients never accept.
	server := flow.MakeIP(9, 9, 9, 9)
	for i := 0; i < 20; i++ {
		client := flow.MakeIP(128, 2, 0, byte(i+1))
		records = append(records, rec(client, server, at, flow.StateEstablished))
	}

	// Mesh: 15 peers (5 internal, 10 external), random bidirectional
	// pairs; every peer initiates and accepts.
	rng := rand.New(rand.NewSource(1))
	peers := make([]flow.IP, 15)
	for i := range peers {
		if i < 5 {
			peers[i] = flow.MakeIP(128, 2, 1, byte(i+1))
		} else {
			peers[i] = flow.MakeIP(66, 1, 1, byte(i+1))
		}
	}
	for i, p := range peers {
		next := peers[(i+1)%len(peers)]
		records = append(records, rec(p, next, at, flow.StateEstablished))
		for k := 0; k < 3; k++ {
			q := peers[rng.Intn(len(peers))]
			if q != p {
				records = append(records, rec(p, q, at, flow.StateEstablished))
			}
		}
	}

	internal := flow.MustParseSubnet("128.2.0.0/16")
	res, err := TDG(records, internal.Contains, DefaultTDGConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(res.Components))
	}
	// The five internal mesh peers are flagged; no star client is.
	for i := 0; i < 5; i++ {
		if !res.P2PHosts[flow.MakeIP(128, 2, 1, byte(i+1))] {
			t.Errorf("mesh peer %d not flagged", i+1)
		}
	}
	for i := 0; i < 20; i++ {
		if res.P2PHosts[flow.MakeIP(128, 2, 0, byte(i+1))] {
			t.Errorf("star client %d flagged", i+1)
		}
	}
	// External mesh peers are not reported (internal filter).
	if res.P2PHosts[flow.MakeIP(66, 1, 1, 6)] {
		t.Error("external peer reported")
	}
}

func TestTDGIgnoresFailedAndSmall(t *testing.T) {
	var records []flow.Record
	at := t0()
	// A large all-failed mesh contributes nothing.
	for i := 0; i < 20; i++ {
		records = append(records, rec(flow.MakeIP(128, 2, 2, byte(i+1)), flow.MakeIP(7, 7, 7, byte(i+2)), at, flow.StateFailed))
	}
	// A tiny component below MinComponentSize.
	records = append(records, rec(flow.MakeIP(128, 2, 3, 1), flow.MakeIP(8, 8, 8, 8), at, flow.StateEstablished))
	res, err := TDG(records, nil, DefaultTDGConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != 0 || len(res.P2PHosts) != 0 {
		t.Errorf("unexpected detection: %+v", res)
	}
}

func TestPersistenceConfigValidate(t *testing.T) {
	good := DefaultPersistenceConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PersistenceConfig{
		{Slices: 1, MinPersistence: 0.5, WhitelistHostFrac: 0.1},
		{Slices: 10, MinPersistence: 0, WhitelistHostFrac: 0.1},
		{Slices: 10, MinPersistence: 1.5, WhitelistHostFrac: 0.1},
		{Slices: 10, MinPersistence: 0.5, WhitelistHostFrac: -0.1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPersistenceFlagsRegularContact(t *testing.T) {
	window := flow.Window{From: t0(), To: t0().Add(6 * time.Hour)}
	var records []flow.Record

	// Host 1 contacts a C&C every 10 minutes all day (persistent).
	cnc := flow.MakeIP(6, 6, 6, 6)
	for at := t0(); at.Before(window.To); at = at.Add(10 * time.Minute) {
		records = append(records, rec(flow.MakeIP(128, 2, 0, 1), cnc, at, flow.StateEstablished))
	}
	// Host 2 contacts many destinations once (bursty browsing).
	for i := 0; i < 50; i++ {
		records = append(records, rec(flow.MakeIP(128, 2, 0, 2), flow.MakeIP(10, 1, 1, byte(i+1)), t0().Add(time.Duration(i)*time.Minute), flow.StateEstablished))
	}
	// Twenty hosts all persistently contact the same mail server — the
	// whitelist must suppress it.
	mail := flow.MakeIP(5, 5, 5, 5)
	for h := 0; h < 20; h++ {
		for at := t0(); at.Before(window.To); at = at.Add(15 * time.Minute) {
			records = append(records, rec(flow.MakeIP(128, 2, 1, byte(h+1)), mail, at, flow.StateEstablished))
		}
	}

	internal := flow.MustParseSubnet("128.2.0.0/16")
	res, err := Persistence(records, window, internal.Contains, DefaultPersistenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged[flow.MakeIP(128, 2, 0, 1)] {
		t.Error("persistent C&C host not flagged")
	}
	if res.Flagged[flow.MakeIP(128, 2, 0, 2)] {
		t.Error("bursty browser flagged")
	}
	if res.Flagged[flow.MakeIP(128, 2, 1, 1)] {
		t.Error("whitelisted mail polling flagged")
	}
	if res.Whitelisted == 0 {
		t.Error("mail server not whitelisted")
	}
	if len(res.Pairs) == 0 || res.Pairs[0].Dst != cnc {
		t.Errorf("pairs = %+v", res.Pairs)
	}
}

func TestPersistenceEmpty(t *testing.T) {
	window := flow.Window{From: t0(), To: t0().Add(time.Hour)}
	res, err := Persistence(nil, window, nil, DefaultPersistenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flagged) != 0 {
		t.Error("flags from no records")
	}
	if _, err := Persistence(nil, flow.Window{}, nil, DefaultPersistenceConfig()); err == nil {
		t.Error("empty window accepted")
	}
}

func TestFailedConn(t *testing.T) {
	var records []flow.Record
	at := t0()
	// Host 1: 50% failures over 40 flows.
	for i := 0; i < 40; i++ {
		state := flow.StateEstablished
		if i%2 == 0 {
			state = flow.StateFailed
		}
		records = append(records, rec(1, flow.IP(100+uint32(i)), at.Add(time.Duration(i)*time.Minute), state))
	}
	// Host 2: 5% failures.
	for i := 0; i < 40; i++ {
		state := flow.StateEstablished
		if i%20 == 0 {
			state = flow.StateFailed
		}
		records = append(records, rec(2, flow.IP(200+uint32(i)), at.Add(time.Duration(i)*time.Minute), state))
	}
	// Host 3: high rate but too few flows.
	for i := 0; i < 5; i++ {
		records = append(records, rec(3, flow.IP(300+uint32(i)), at, flow.StateFailed))
	}
	got, err := FailedConn(records, nil, DefaultFailedConnConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !got[1] || got[2] || got[3] {
		t.Errorf("flagged = %v", got)
	}
	bad := FailedConnConfig{MinFailedRate: 0, MinFlows: 1}
	if _, err := FailedConn(records, nil, bad); err == nil {
		t.Error("bad config accepted")
	}
}
