package baseline

import (
	"fmt"
	"sort"
	"time"

	"plotters/internal/flow"
)

// PersistenceConfig parameterizes the Giroire-style detector: the
// observation window is sliced into equal sub-windows, each (host,
// destination) pair's *persistence* is the fraction of sub-windows in
// which the host contacted the destination, and hosts maintaining
// highly persistent destinations beyond a whitelist are flagged.
type PersistenceConfig struct {
	// Slices is the number of equal sub-windows the observation window
	// is divided into.
	Slices int
	// MinPersistence flags a destination contacted in at least this
	// fraction of sub-windows.
	MinPersistence float64
	// Whitelist drops destinations that are persistent for many hosts
	// (the paper notes this detector *requires* whitelisting common
	// sites): any destination persistent for more than WhitelistHostFrac
	// of the analyzed hosts is assumed benign infrastructure.
	WhitelistHostFrac float64
}

// DefaultPersistenceConfig mirrors the published operating point
// (hour-scale slices, high persistence).
func DefaultPersistenceConfig() PersistenceConfig {
	return PersistenceConfig{
		Slices:            12,
		MinPersistence:    0.6,
		WhitelistHostFrac: 0.1,
	}
}

// Validate checks the configuration.
func (c *PersistenceConfig) Validate() error {
	if c.Slices < 2 {
		return fmt.Errorf("baseline: Slices must be >= 2, got %d", c.Slices)
	}
	if c.MinPersistence <= 0 || c.MinPersistence > 1 {
		return fmt.Errorf("baseline: MinPersistence %v outside (0,1]", c.MinPersistence)
	}
	if c.WhitelistHostFrac < 0 || c.WhitelistHostFrac > 1 {
		return fmt.Errorf("baseline: WhitelistHostFrac %v outside [0,1]", c.WhitelistHostFrac)
	}
	return nil
}

// PersistentPair is one flagged (host, destination) relationship.
type PersistentPair struct {
	Host        flow.IP
	Dst         flow.IP
	Persistence float64
}

// PersistenceResult is the detector's outcome.
type PersistenceResult struct {
	// Flagged are internal hosts that maintain at least one persistent,
	// non-whitelisted destination.
	Flagged map[flow.IP]bool
	// Pairs lists the flagged relationships (sorted by host, then dst).
	Pairs []PersistentPair
	// Whitelisted counts destinations suppressed as common
	// infrastructure.
	Whitelisted int
}

// Persistence runs the persistent-connection detector over one window.
// internal selects monitored initiators (nil = all).
func Persistence(records []flow.Record, window flow.Window, internal func(flow.IP) bool, cfg PersistenceConfig) (*PersistenceResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if window.Duration() <= 0 {
		return nil, fmt.Errorf("baseline: empty window")
	}
	sliceLen := window.Duration() / time.Duration(cfg.Slices)
	if sliceLen <= 0 {
		return nil, fmt.Errorf("baseline: window too short for %d slices", cfg.Slices)
	}

	type pair struct{ host, dst flow.IP }
	seen := make(map[pair]map[int]bool)
	hosts := make(map[flow.IP]bool)
	for i := range records {
		r := &records[i]
		if !window.Contains(r.Start) {
			continue
		}
		if internal != nil && !internal(r.Src) {
			continue
		}
		hosts[r.Src] = true
		slice := int(r.Start.Sub(window.From) / sliceLen)
		if slice >= cfg.Slices {
			slice = cfg.Slices - 1
		}
		key := pair{r.Src, r.Dst}
		if seen[key] == nil {
			seen[key] = make(map[int]bool)
		}
		seen[key][slice] = true
	}
	if len(hosts) == 0 {
		return &PersistenceResult{Flagged: map[flow.IP]bool{}}, nil
	}

	// Candidate persistent pairs, and per-destination host counts for
	// whitelisting.
	persistentHostsPerDst := make(map[flow.IP]int)
	var candidates []PersistentPair
	for key, slices := range seen {
		p := float64(len(slices)) / float64(cfg.Slices)
		if p >= cfg.MinPersistence {
			candidates = append(candidates, PersistentPair{Host: key.host, Dst: key.dst, Persistence: p})
			persistentHostsPerDst[key.dst]++
		}
	}
	whitelistAt := cfg.WhitelistHostFrac * float64(len(hosts))

	result := &PersistenceResult{Flagged: make(map[flow.IP]bool)}
	for _, cand := range candidates {
		if float64(persistentHostsPerDst[cand.Dst]) > whitelistAt {
			continue
		}
		result.Flagged[cand.Host] = true
		result.Pairs = append(result.Pairs, cand)
	}
	for dst, n := range persistentHostsPerDst {
		if float64(n) > whitelistAt {
			result.Whitelisted++
			_ = dst
		}
	}
	sort.Slice(result.Pairs, func(i, j int) bool {
		if result.Pairs[i].Host != result.Pairs[j].Host {
			return result.Pairs[i].Host < result.Pairs[j].Host
		}
		return result.Pairs[i].Dst < result.Pairs[j].Dst
	})
	return result, nil
}

// FailedConnConfig parameterizes the coarse failed-connection P2P
// identifier.
type FailedConnConfig struct {
	// MinFailedRate flags hosts whose failed-connection rate exceeds it.
	MinFailedRate float64
	// MinFlows requires a minimum number of initiated flows.
	MinFlows int
}

// DefaultFailedConnConfig mirrors the published heuristics (~25%).
func DefaultFailedConnConfig() FailedConnConfig {
	return FailedConnConfig{MinFailedRate: 0.25, MinFlows: 20}
}

// Validate checks the configuration.
func (c *FailedConnConfig) Validate() error {
	if c.MinFailedRate <= 0 || c.MinFailedRate >= 1 {
		return fmt.Errorf("baseline: MinFailedRate %v outside (0,1)", c.MinFailedRate)
	}
	if c.MinFlows < 1 {
		return fmt.Errorf("baseline: MinFlows must be >= 1, got %d", c.MinFlows)
	}
	return nil
}

// FailedConn flags hosts whose failed-connection rate marks them as
// likely P2P participants — Traders *and* Plotters alike, which is
// precisely why the paper uses it only as a reduction step.
func FailedConn(records []flow.Record, internal func(flow.IP) bool, cfg FailedConnConfig) (map[flow.IP]bool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	feats := flow.ExtractFeatures(records, flow.FeatureOptions{Hosts: internal})
	out := make(map[flow.IP]bool)
	for host, f := range feats {
		if f.Flows >= cfg.MinFlows && f.FailedRate() > cfg.MinFailedRate {
			out[host] = true
		}
	}
	return out, nil
}
