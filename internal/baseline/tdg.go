// Package baseline implements the alternative detection approaches the
// paper positions itself against (§II), so FindPlotters can be compared
// head-to-head on the same traffic:
//
//   - TDG: traffic dispersion graphs (Iliofotou et al., IMC 2007) —
//     graph-level P2P *traffic* identification. Flags P2P hosts, both
//     Traders and Plotters, without separating them; the paper's §II
//     cites the Jelasity & Bilicki analysis of its evadability.
//   - Persistence: persistent/regular connections to the same
//     destination atoms (Giroire et al., RAID 2009) — centralized-C&C
//     detection requiring whitelists, which the paper notes is "not
//     suitable for detecting Plotters that communicate over P2P".
//   - FailedConn: the coarse failed-connection P2P identifier (Collins &
//     Reiter, ESORICS 2006; Bartlett et al.) that the paper adopts as its
//     reduction step, run standalone as a detector.
//
// None of these separates Traders from Plotters; the eval harness
// contrasts their output with FindPlotters' to reproduce the paper's
// motivating claim.
package baseline

import (
	"fmt"
	"sort"

	"plotters/internal/flow"
)

// TDGConfig parameterizes the traffic-dispersion-graph detector.
type TDGConfig struct {
	// MinAvgDegree is the component average-degree threshold: P2P
	// overlays produce sparse but broad graphs whose average degree
	// exceeds client-server traffic's.
	MinAvgDegree float64
	// MinInOutFraction is the threshold on the fraction of component
	// nodes with both incoming and outgoing edges — the "InO" metric of
	// the TDG literature; P2P peers both accept and initiate.
	MinInOutFraction float64
	// MinComponentSize ignores trivially small components.
	MinComponentSize int
}

// DefaultTDGConfig mirrors the published operating ranges.
func DefaultTDGConfig() TDGConfig {
	return TDGConfig{
		MinAvgDegree:     2.8,
		MinInOutFraction: 0.01,
		MinComponentSize: 10,
	}
}

// Validate checks the configuration.
func (c *TDGConfig) Validate() error {
	if c.MinAvgDegree <= 0 {
		return fmt.Errorf("baseline: MinAvgDegree must be positive, got %v", c.MinAvgDegree)
	}
	if c.MinInOutFraction < 0 || c.MinInOutFraction > 1 {
		return fmt.Errorf("baseline: MinInOutFraction %v outside [0,1]", c.MinInOutFraction)
	}
	if c.MinComponentSize < 2 {
		return fmt.Errorf("baseline: MinComponentSize must be >= 2, got %d", c.MinComponentSize)
	}
	return nil
}

// TDGResult is the detector's outcome.
type TDGResult struct {
	// P2PHosts are the internal hosts that belong to a component judged
	// P2P-like.
	P2PHosts map[flow.IP]bool
	// Components summarizes every analyzed component.
	Components []TDGComponent
}

// TDGComponent is one connected component of the dispersion graph.
type TDGComponent struct {
	Nodes         int
	Edges         int
	AvgDegree     float64
	InOutFraction float64
	// P2P reports whether the component passed both thresholds.
	P2P bool
	// InternalHosts counts monitored members.
	InternalHosts int
}

// TDG builds per-destination-port traffic dispersion graphs — the TDG
// literature graphs each application (port) separately, since the full
// border graph is one giant star-dominated component — and flags the
// internal members of components whose shape is P2P-like: nodes are
// endpoints, a directed edge connects initiator to responder of at least
// one successful flow. internal selects monitored addresses (nil = all).
func TDG(records []flow.Record, internal func(flow.IP) bool, cfg TDGConfig) (*TDGResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	byPort := make(map[uint16][]flow.Record)
	for i := range records {
		byPort[records[i].DstPort] = append(byPort[records[i].DstPort], records[i])
	}
	ports := make([]uint16, 0, len(byPort))
	for p := range byPort {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })

	result := &TDGResult{P2PHosts: make(map[flow.IP]bool)}
	for _, port := range ports {
		sub, err := tdgOnePort(byPort[port], internal, cfg)
		if err != nil {
			return nil, err
		}
		for h := range sub.P2PHosts {
			result.P2PHosts[h] = true
		}
		result.Components = append(result.Components, sub.Components...)
	}
	return result, nil
}

// tdgOnePort analyzes the dispersion graph of one port's traffic.
func tdgOnePort(records []flow.Record, internal func(flow.IP) bool, cfg TDGConfig) (*TDGResult, error) {
	type edge struct{ a, b flow.IP }
	edges := make(map[edge]bool)
	hasOut := make(map[flow.IP]bool)
	hasIn := make(map[flow.IP]bool)
	parent := make(map[flow.IP]flow.IP)

	var find func(x flow.IP) flow.IP
	find = func(x flow.IP) flow.IP {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	add := func(x flow.IP) {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
	}
	union := func(a, b flow.IP) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	for i := range records {
		r := &records[i]
		if r.Failed() {
			continue // the TDG literature graphs observed conversations
		}
		add(r.Src)
		add(r.Dst)
		union(r.Src, r.Dst)
		edges[edge{r.Src, r.Dst}] = true
		hasOut[r.Src] = true
		hasIn[r.Dst] = true
	}

	// Group nodes by component root.
	members := make(map[flow.IP][]flow.IP)
	for node := range parent {
		root := find(node)
		members[root] = append(members[root], node)
	}
	edgeCount := make(map[flow.IP]int)
	for e := range edges {
		edgeCount[find(e.a)]++
	}

	roots := make([]flow.IP, 0, len(members))
	for root := range members {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })

	result := &TDGResult{P2PHosts: make(map[flow.IP]bool)}
	for _, root := range roots {
		nodes := members[root]
		if len(nodes) < cfg.MinComponentSize {
			continue
		}
		comp := TDGComponent{Nodes: len(nodes), Edges: edgeCount[root]}
		comp.AvgDegree = 2 * float64(comp.Edges) / float64(comp.Nodes)
		inOut := 0
		for _, n := range nodes {
			if hasIn[n] && hasOut[n] {
				inOut++
			}
			if internal == nil || internal(n) {
				comp.InternalHosts++
			}
		}
		comp.InOutFraction = float64(inOut) / float64(comp.Nodes)
		comp.P2P = comp.AvgDegree >= cfg.MinAvgDegree && comp.InOutFraction >= cfg.MinInOutFraction
		if comp.P2P {
			for _, n := range nodes {
				if internal == nil || internal(n) {
					result.P2PHosts[n] = true
				}
			}
		}
		result.Components = append(result.Components, comp)
	}
	return result, nil
}
