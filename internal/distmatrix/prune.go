package distmatrix

// The pruned distance engine: the matrix fill used when Options.Cut > 0.
//
// Exact distances only matter below the cut — the θ_hm agglomerative
// clustering this package serves never merges across the cut, so any
// pair provably above it can be stored as Sentinel without computing it.
// Layers, cheapest first:
//
//  1. prefilter — Options.Bound, an admissible lower bound (for θ_hm, the
//     coarsened-CDF L1 distance from internal/emd). One branch-free pass
//     per row discards the bulk of above-cut pairs.
//  2. pivot triangle pruning — exact distances from every item to k
//     pivots (deterministic farthest-point selection) give the metric
//     lower bound max_p |d(i,p) − d(j,p)| for pairs the prefilter let
//     through.
//  3. exact evaluation — survivors get the real DistFunc call; values
//     above the cut are still stored as Sentinel (the gate).
//
// The invariant all equivalence tests pin: the finished matrix is a pure
// function of the exact distances and the cut. Pruning layers decide how
// many exact evaluations are spent producing it, never what it contains.
//
// Error determinism with pruning active: the reported error is the first
// erroring pair in the engine's deterministic evaluation order — pivot
// rows in selection order, then the remaining pairs lexicographically,
// pruned pairs excluded (they are never evaluated). The sequential and
// parallel paths report the identical pair, via the same error-bound
// ratchet the exhaustive parallel path uses.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"plotters/internal/metrics"
)

// engine holds the shared state of one pruned matrix fill.
type engine struct {
	m    *Matrix
	dist DistFunc
	// cut gates stored values; threshold (cut plus relative slack) gates
	// lower bounds, absorbing float rounding between bound and exact.
	cut       float64
	threshold float64
	bound     BoundFunc
	// pivotSlot[i] >= 0 marks item i as pivot #pivotSlot[i]; pivotD[t][j]
	// is the exact distance from pivot t to item j. Pivot rows are fully
	// written into the matrix during selection, so the main fill skips
	// any pair touching a pivot.
	pivotSlot []int32
	pivotD    [][]float64

	stats *PruneStats
	reg   *metrics.Registry
}

// workerState is one worker's scratch and local tallies, flushed once at
// worker exit so the per-pair loops carry no metrics calls.
type workerState struct {
	surv       []int32 // columns of the current row needing exact evaluation
	sinceCheck int
	stats      PruneStats
	boundDur   time.Duration
	exactDur   time.Duration
}

// newEngine validates pruning options and runs the pivot phase.
func newEngine(ctx context.Context, m *Matrix, dist DistFunc, opts Options) (*engine, error) {
	e := &engine{
		m:         m,
		dist:      dist,
		cut:       opts.Cut,
		threshold: opts.Cut * (1 + boundSlack),
		bound:     opts.Bound,
		stats:     opts.Stats,
		reg:       opts.Metrics,
	}
	if k := opts.Pivots; k > 0 {
		if k > m.n {
			k = m.n
		}
		t := e.reg.StartStage("distmatrix/pivots")
		err := e.selectPivots(ctx, k)
		t.Stop()
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

// selectPivots picks k pivots by farthest-point traversal — item 0
// first, then repeatedly the item maximizing its distance to the nearest
// chosen pivot (ties toward the smallest index) — computing each pivot's
// full exact distance row along the way. Farthest-point spreads pivots
// across the metric space, which is what makes |d(i,p) − d(j,p)| sharp:
// a pivot near i and far from j certifies a large d(i,j).
func (e *engine) selectPivots(ctx context.Context, k int) error {
	n := e.m.n
	e.pivotSlot = make([]int32, n)
	for i := range e.pivotSlot {
		e.pivotSlot[i] = -1
	}
	e.pivotD = make([][]float64, 0, k)
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = Sentinel
	}
	done := ctx.Done()
	st := &workerState{}
	start := time.Now()
	cur := 0
	for t := 0; t < k; t++ {
		e.pivotSlot[cur] = int32(t)
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			if j == cur {
				continue
			}
			if s := e.pivotSlot[j]; s >= 0 {
				// Pair already computed (and counted) by an earlier
				// pivot's row; reuse the symmetric entry.
				row[j] = e.pivotD[s][cur]
				continue
			}
			if st.sinceCheck++; st.sinceCheck >= ctxCheckStride && done != nil {
				st.sinceCheck = 0
				select {
				case <-done:
					e.flushWorker(st, start)
					return ctx.Err()
				default:
				}
			}
			lo, hi := cur, j
			if hi < lo {
				lo, hi = hi, lo
			}
			v, err := e.dist(lo, hi)
			st.stats.Total++
			st.stats.Exact++
			if err != nil {
				e.flushWorker(st, start)
				return pairError(lo, hi, err)
			}
			row[j] = v
			e.m.set(lo, hi, e.gate(v, st))
		}
		e.pivotD = append(e.pivotD, row)
		next := -1
		best := -1.0
		for j := 0; j < n; j++ {
			if e.pivotSlot[j] >= 0 {
				continue
			}
			if row[j] < minD[j] {
				minD[j] = row[j]
			}
			if minD[j] > best {
				best = minD[j]
				next = j
			}
		}
		if next < 0 {
			break // every item is a pivot
		}
		cur = next
	}
	e.flushWorker(st, start)
	return nil
}

// gate stores-or-sentinels one exactly-evaluated distance.
func (e *engine) gate(v float64, st *workerState) float64 {
	if v > e.cut {
		st.stats.Gated++
		return Sentinel
	}
	return v
}

// rowDone reports whether row i was fully written during the pivot phase.
func (e *engine) rowDone(i int) bool {
	return e.pivotSlot != nil && e.pivotSlot[i] >= 0
}

// boundRow runs the pruning layers over row i: pruned pairs get their
// Sentinel written immediately, survivors' columns land in st.surv for
// the exact pass.
func (e *engine) boundRow(i int, st *workerState) {
	st.surv = st.surv[:0]
	n := e.m.n
	for j := i + 1; j < n; j++ {
		if e.pivotSlot != nil && e.pivotSlot[j] >= 0 {
			continue // written (and counted) in the pivot phase
		}
		st.stats.Total++
		if e.bound != nil {
			if lb := e.bound(i, j); lb > e.threshold {
				st.stats.PrunedBound++
				e.m.set(i, j, Sentinel)
				continue
			}
		}
		if e.pivotD != nil && e.pivotTriBound(i, j) > e.threshold {
			st.stats.PrunedPivot++
			e.m.set(i, j, Sentinel)
			continue
		}
		st.surv = append(st.surv, int32(j))
	}
}

// pivotTriBound is max_p |d(i,p) − d(j,p)|, early-exiting once any pivot
// certifies the pair above the threshold.
func (e *engine) pivotTriBound(i, j int) float64 {
	var best float64
	for _, row := range e.pivotD {
		d := row[i] - row[j]
		if d < 0 {
			d = -d
		}
		if d > best {
			if d > e.threshold {
				return d
			}
			best = d
		}
	}
	return best
}

// flushWorker publishes one worker's tallies: atomic adds into the
// caller's PruneStats and one batch of counter adds plus busy-time
// observations into the registry.
func (e *engine) flushWorker(st *workerState, start time.Time) {
	if e.stats != nil {
		atomic.AddInt64(&e.stats.Total, st.stats.Total)
		atomic.AddInt64(&e.stats.PrunedBound, st.stats.PrunedBound)
		atomic.AddInt64(&e.stats.PrunedPivot, st.stats.PrunedPivot)
		atomic.AddInt64(&e.stats.Exact, st.stats.Exact)
		atomic.AddInt64(&e.stats.Gated, st.stats.Gated)
	}
	if e.reg == nil {
		return
	}
	e.reg.Counter("distmatrix/pairs").Add(st.stats.Exact)
	e.reg.Counter("distmatrix/pairs_total").Add(st.stats.Total)
	e.reg.Counter("distmatrix/pairs_pruned_bound").Add(st.stats.PrunedBound)
	e.reg.Counter("distmatrix/pairs_pruned_pivot").Add(st.stats.PrunedPivot)
	e.reg.Counter("distmatrix/pairs_gated").Add(st.stats.Gated)
	e.reg.Histogram("distmatrix/worker_busy").Observe(time.Since(start))
	e.reg.Histogram("distmatrix/prefilter_busy").Observe(st.boundDur)
	e.reg.Histogram("distmatrix/exact_busy").Observe(st.exactDur)
}

// computeSeqPruned is the deterministic single-worker pruned fill: rows
// ascending, each row bounded then exactly evaluated, stopping at the
// first error.
func computeSeqPruned(ctx context.Context, e *engine) error {
	n := e.m.n
	done := ctx.Done()
	st := &workerState{surv: make([]int32, 0, n)}
	start := time.Now()
	timed := e.reg != nil
	for i := 0; i < n-1; i++ {
		if e.rowDone(i) {
			continue
		}
		// The bound pass is cheap enough that polling the context once
		// per row (plus every ctxCheckStride exact evaluations) keeps
		// cancellation latency in the low milliseconds.
		if done != nil {
			select {
			case <-done:
				e.flushWorker(st, start)
				return ctx.Err()
			default:
			}
		}
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		e.boundRow(i, st)
		if timed {
			now := time.Now()
			st.boundDur += now.Sub(t0)
			t0 = now
		}
		for _, j32 := range st.surv {
			j := int(j32)
			if st.sinceCheck++; st.sinceCheck >= ctxCheckStride && done != nil {
				st.sinceCheck = 0
				select {
				case <-done:
					e.flushWorker(st, start)
					return ctx.Err()
				default:
				}
			}
			v, err := e.dist(i, j)
			st.stats.Exact++
			if err != nil {
				if timed {
					st.exactDur += time.Since(t0)
				}
				e.flushWorker(st, start)
				return pairError(i, j, err)
			}
			e.m.set(i, j, e.gate(v, st))
		}
		if timed {
			st.exactDur += time.Since(t0)
		}
	}
	e.flushWorker(st, start)
	return nil
}

// computeParPruned shards the pruned fill across workers with the same
// row-block cursor and error-bound ratchet as the exhaustive parallel
// path (see computePar): the smallest erroring pair in the deterministic
// pruned evaluation order wins, no matter which worker saw its error
// first. Pruned pairs never error — they are never evaluated — so the
// ratchet only tracks exact evaluations.
func computeParPruned(ctx context.Context, e *engine, workers int) error {
	n := e.m.n
	totalPairs := n * (n - 1) / 2
	targetPairs := totalPairs / (workers * 8)
	if targetPairs < ctxCheckStride {
		targetPairs = ctxCheckStride
	}

	var (
		cursor   atomic.Int64
		errBound atomic.Int64
		errMu    sync.Mutex
		errs     = map[int64]error{}
		wg       sync.WaitGroup
	)
	errBound.Store(int64(n) * int64(n))

	done := ctx.Done()
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}

	timed := e.reg != nil
	worker := func() {
		defer wg.Done()
		st := &workerState{surv: make([]int32, 0, n)}
		start := time.Now()
		defer func() { e.flushWorker(st, start) }()
		for {
			claimStart := int(cursor.Load())
			var end int
			for {
				if claimStart >= n-1 {
					return
				}
				end = claimStart
				pairs := 0
				for end < n-1 && pairs < targetPairs {
					pairs += n - 1 - end
					end++
				}
				if cursor.CompareAndSwap(int64(claimStart), int64(end)) {
					break
				}
				claimStart = int(cursor.Load())
			}
			for i := claimStart; i < end; i++ {
				if e.rowDone(i) {
					continue
				}
				rowBase := int64(i) * int64(n)
				if rowBase+int64(i)+1 >= errBound.Load() {
					return
				}
				if canceled() {
					return
				}
				var t0 time.Time
				if timed {
					t0 = time.Now()
				}
				e.boundRow(i, st)
				if timed {
					now := time.Now()
					st.boundDur += now.Sub(t0)
					t0 = now
				}
				for _, j32 := range st.surv {
					j := int(j32)
					idx := rowBase + int64(j)
					if idx >= errBound.Load() {
						break
					}
					if st.sinceCheck++; st.sinceCheck >= ctxCheckStride {
						st.sinceCheck = 0
						if canceled() {
							if timed {
								st.exactDur += time.Since(t0)
							}
							return
						}
					}
					v, err := e.dist(i, j)
					st.stats.Exact++
					if err != nil {
						errMu.Lock()
						errs[idx] = err
						errMu.Unlock()
						for {
							cur := errBound.Load()
							if idx >= cur || errBound.CompareAndSwap(cur, idx) {
								break
							}
						}
						break
					}
					e.m.set(i, j, e.gate(v, st))
				}
				if timed {
					st.exactDur += time.Since(t0)
				}
			}
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()

	if canceled() {
		return ctx.Err()
	}
	if bound := errBound.Load(); bound < int64(n)*int64(n) {
		i, j := int(bound/int64(n)), int(bound%int64(n))
		errMu.Lock()
		err := errs[bound]
		errMu.Unlock()
		return pairError(i, j, err)
	}
	return nil
}
