package distmatrix

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plotters/internal/metrics"
)

// lineMetric is a 1-D point set: dist(i,j) = |x_i − x_j| is a true
// metric (so pivot pruning is sound), and coarse-rounded coordinates
// give an admissible lower bound the same way the coarsened-CDF
// signatures do for EMD.
type lineMetric struct {
	x []float64
}

func randLineMetric(rng *rand.Rand, n int) *lineMetric {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 100
	}
	return &lineMetric{x: x}
}

func (l *lineMetric) dist(i, j int) (float64, error) {
	return math.Abs(l.x[i] - l.x[j]), nil
}

// bound rounds both coordinates to a 0.5 grid: the rounded distance can
// overshoot the true one by at most 0.5, so subtracting 0.5 is
// admissible (clamped at zero) while still pruning far pairs.
func (l *lineMetric) bound(i, j int) float64 {
	const cell = 0.5
	a := math.Round(l.x[i]/cell) * cell
	b := math.Round(l.x[j]/cell) * cell
	lb := math.Abs(a-b) - cell
	if lb < 0 {
		return 0
	}
	return lb
}

// gateMatrix applies the cut to an exhaustive matrix: the reference the
// pruned engine must reproduce bit for bit.
func gateMatrix(m *Matrix, cut float64) *Matrix {
	n := m.N()
	out := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := m.At(i, j)
			if v > cut {
				v = Sentinel
			}
			out.set(i, j, v)
		}
	}
	return out
}

func matricesEqual(a, b *Matrix) (int, int, bool) {
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.N(); j++ {
			if a.At(i, j) != b.At(i, j) {
				return i, j, false
			}
		}
	}
	return 0, 0, true
}

// TestPrunedMatrixMatchesGatedExhaustive pins the engine's central
// invariant: for random metrics and random cuts, the pruned matrix —
// any combination of prefilter, pivots, sequential, parallel — is
// bit-identical to the exhaustive matrix with the same cut applied
// after the fact.
func TestPrunedMatrixMatchesGatedExhaustive(t *testing.T) {
	ctx := context.Background()
	property := func(seed int64, nRaw, pivotsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%60
		l := randLineMetric(rng, n)
		cut := rng.Float64() * 60
		exhaustive, err := Compute(ctx, n, l.dist, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := gateMatrix(exhaustive, cut)
		for _, cfg := range []Options{
			{Parallelism: 1, Cut: cut},
			{Parallelism: 1, Cut: cut, Bound: l.bound},
			{Parallelism: 1, Cut: cut, Bound: l.bound, Pivots: 1 + int(pivotsRaw)%5},
			{Parallelism: 4, SequentialCutoff: -1, Cut: cut, Bound: l.bound, Pivots: 1 + int(pivotsRaw)%5},
			{Parallelism: 4, SequentialCutoff: -1, Cut: cut, Pivots: 3},
		} {
			got, err := Compute(ctx, n, l.dist, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if i, j, ok := matricesEqual(got, want); !ok {
				t.Logf("seed=%d n=%d cut=%v cfg=%+v: cell (%d,%d) = %v, want %v",
					seed, n, cut, cfg, i, j, got.At(i, j), want.At(i, j))
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPrunedStatsAccounting: every pair is counted exactly once across
// the pruning layers, the registry counters agree with the caller's
// PruneStats, and pruning actually skips work on a spread-out input.
func TestPrunedStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 120
	l := randLineMetric(rng, n)
	var st PruneStats
	reg := metrics.New()
	_, err := Compute(context.Background(), n, l.dist, Options{
		Parallelism: 3, SequentialCutoff: -1,
		Cut: 5, Bound: l.bound, Pivots: 4, Stats: &st, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(n * (n - 1) / 2)
	if st.Total != total {
		t.Errorf("Total = %d, want %d", st.Total, total)
	}
	if got := st.PrunedBound + st.PrunedPivot + st.Exact; got != total {
		t.Errorf("PrunedBound+PrunedPivot+Exact = %d, want %d (%+v)", got, total, st)
	}
	if st.PrunedBound == 0 {
		t.Error("prefilter pruned nothing on a spread-out input")
	}
	if st.Exact >= total/2 {
		t.Errorf("Exact = %d of %d pairs: pruning ineffective", st.Exact, total)
	}
	if st.Gated > st.Exact {
		t.Errorf("Gated = %d exceeds Exact = %d", st.Gated, st.Exact)
	}
	snap := reg.TakeSnapshot()
	for name, want := range map[string]int64{
		"distmatrix/pairs":              st.Exact,
		"distmatrix/pairs_total":        st.Total,
		"distmatrix/pairs_pruned_bound": st.PrunedBound,
		"distmatrix/pairs_pruned_pivot": st.PrunedPivot,
		"distmatrix/pairs_gated":        st.Gated,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
}

// TestPrunedSentinelPlacement: below-cut pairs hold their exact values,
// above-cut pairs hold Sentinel, the diagonal stays zero.
func TestPrunedSentinelPlacement(t *testing.T) {
	l := &lineMetric{x: []float64{0, 1, 2, 50, 51, 103}}
	n := len(l.x)
	m, err := Compute(context.Background(), n, l.dist, Options{
		Parallelism: 1, Cut: 10, Bound: l.bound, Pivots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if m.At(i, i) != 0 {
			t.Errorf("diagonal (%d,%d) = %v", i, i, m.At(i, i))
		}
		for j := i + 1; j < n; j++ {
			want, _ := l.dist(i, j)
			got := m.At(i, j)
			if want > 10 {
				if !IsSentinel(got) {
					t.Errorf("(%d,%d) = %v, want Sentinel (exact %v > cut)", i, j, got, want)
				}
			} else if got != want {
				t.Errorf("(%d,%d) = %v, want exact %v", i, j, got, want)
			}
			if got != m.At(j, i) {
				t.Errorf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

// TestPrunedErrorDeterminism: the sequential and parallel pruned paths
// report the same erroring pair — the first one in the pruned
// evaluation order — regardless of worker scheduling.
func TestPrunedErrorDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 90
	l := randLineMetric(rng, n)
	errBoom := errors.New("boom")
	// Fail every close pair in rows 40+: close pairs survive pruning, so
	// the engine must reach one, and many will fail across workers.
	dist := func(i, j int) (float64, error) {
		v, _ := l.dist(i, j)
		if i >= 40 && v < 20 {
			return 0, errBoom
		}
		return v, nil
	}
	var seqPE, parPE *PairError
	_, err := Compute(context.Background(), n, dist, Options{Parallelism: 1, Cut: 15, Bound: l.bound})
	if !errors.As(err, &seqPE) {
		t.Fatalf("sequential: expected PairError, got %v", err)
	}
	_, err = Compute(context.Background(), n, dist, Options{Parallelism: 8, SequentialCutoff: -1, Cut: 15, Bound: l.bound})
	if !errors.As(err, &parPE) {
		t.Fatalf("parallel: expected PairError, got %v", err)
	}
	if seqPE.I != parPE.I || seqPE.J != parPE.J {
		t.Errorf("error pair: seq (%d,%d), par (%d,%d)", seqPE.I, seqPE.J, parPE.I, parPE.J)
	}
	if !errors.Is(err, errBoom) {
		t.Errorf("unwrap lost the distance error: %v", err)
	}
}

// TestPrunedCancellation: a canceled context stops both pruned paths.
func TestPrunedCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 80
	l := randLineMetric(rng, n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		_, err := Compute(ctx, n, l.dist, Options{Parallelism: par, SequentialCutoff: -1, Cut: 10, Bound: l.bound})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallelism %d: err = %v, want context.Canceled", par, err)
		}
	}
}

// TestPrunedPivotSaturation: asking for more pivots than items must not
// loop or double-count; with every item a pivot the matrix is complete
// and exact evaluations cover each pair once.
func TestPrunedPivotSaturation(t *testing.T) {
	l := &lineMetric{x: []float64{3, 1, 4, 1.5, 9}}
	n := len(l.x)
	var st PruneStats
	m, err := Compute(context.Background(), n, l.dist, Options{
		Parallelism: 1, Cut: 100, Pivots: 50, Stats: &st,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(n * (n - 1) / 2)
	if st.Exact != total || st.Total != total {
		t.Errorf("stats = %+v, want Total = Exact = %d", st, total)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			want, _ := l.dist(i, j)
			if got := m.At(i, j); got != want {
				t.Errorf("(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestPrunedAdversarialBound: even a uselessly loose bound (always 0)
// and a bound that lies within the slack margin keep the matrix correct
// — layers may only skip pairs the cut proves irrelevant.
func TestPrunedAdversarialBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 40
	l := randLineMetric(rng, n)
	cut := 20.0
	exhaustive, err := Compute(context.Background(), n, l.dist, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := gateMatrix(exhaustive, cut)
	for name, bound := range map[string]BoundFunc{
		"zero":  func(i, j int) float64 { return 0 },
		"exact": func(i, j int) float64 { v, _ := l.dist(i, j); return v },
	} {
		got, err := Compute(context.Background(), n, l.dist, Options{Parallelism: 1, Cut: cut, Bound: bound})
		if err != nil {
			t.Fatal(err)
		}
		if i, j, ok := matricesEqual(got, want); !ok {
			t.Errorf("%s bound: cell (%d,%d) = %v, want %v", name, i, j, got.At(i, j), want.At(i, j))
		}
	}
}

func ExampleOptions_pruned() {
	// Ten points in two far-apart clumps: with a cut of 5 every
	// cross-clump pair is pruned or gated to the sentinel.
	x := []float64{0, 1, 2, 3, 4, 100, 101, 102, 103, 104}
	l := &lineMetric{x: x}
	var st PruneStats
	m, err := Compute(context.Background(), len(x), l.dist, Options{
		Parallelism: 1, Cut: 5, Bound: l.bound, Pivots: 2, Stats: &st,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("within: %v  across: sentinel=%v  exact evals: %d of %d\n",
		m.At(0, 4), IsSentinel(m.At(0, 9)), st.Exact, st.Total)
	// Output:
	// within: 4  across: sentinel=true  exact evals: 29 of 45
}
