package distmatrix

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// absDist builds a DistFunc over scalar points.
func absDist(pts []float64) DistFunc {
	return func(i, j int) (float64, error) {
		return math.Abs(pts[i] - pts[j]), nil
	}
}

func randomPoints(rng *rand.Rand, n int) []float64 {
	pts := make([]float64, n)
	for i := range pts {
		pts[i] = rng.NormFloat64() * 100
	}
	return pts
}

func TestComputeDegenerate(t *testing.T) {
	for _, n := range []int{0, 1} {
		m, err := Compute(context.Background(), n, nil, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if m.N() != n {
			t.Errorf("n=%d: N() = %d", n, m.N())
		}
	}
	if _, err := Compute(context.Background(), -1, nil, Options{}); err == nil {
		t.Error("negative dimension accepted")
	}
}

func TestComputeSmallKnown(t *testing.T) {
	pts := []float64{0, 1, 5}
	m, err := Compute(context.Background(), 3, absDist(pts), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0, 1, 5}, {1, 0, 4}, {5, 4, 0}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != want[i][j] {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

// The parallel path must produce a matrix bit-identical to the
// sequential one, across sizes spanning the sequential cutoff and worker
// counts exceeding the row count.
func TestParallelBitIdenticalToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 17, 47, 48, 49, 100, 257} {
		pts := randomPoints(rng, n)
		// An irrational-ish transform so values exercise the full
		// mantissa, making "bit-identical" a real claim.
		dist := func(i, j int) (float64, error) {
			return math.Sqrt(math.Abs(pts[i]-pts[j])) * math.Pi, nil
		}
		seq, err := Compute(context.Background(), n, dist, Options{Parallelism: 1, SequentialCutoff: -1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 3, 8, n + 5} {
			got, err := Compute(context.Background(), n, dist, Options{Parallelism: par, SequentialCutoff: -1})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if sv, gv := seq.At(i, j), got.At(i, j); math.Float64bits(sv) != math.Float64bits(gv) {
						t.Fatalf("n=%d par=%d: At(%d,%d) = %v, sequential %v", n, par, i, j, gv, sv)
					}
				}
			}
		}
	}
}

func TestMatrixSymmetricZeroDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 64
	m, err := Compute(context.Background(), n, absDist(randomPoints(rng, n)), Options{Parallelism: 4, SequentialCutoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if m.At(i, i) != 0 {
			t.Errorf("diagonal At(%d,%d) = %v", i, i, m.At(i, i))
		}
		for j := i + 1; j < n; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Errorf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

// Whichever worker sees an error first, Compute must report the error of
// the lexicographically smallest failing pair — the one a sequential
// loop would hit — so error output is stable under parallelism.
func TestFirstErrorIsLexicographicallySmallest(t *testing.T) {
	n := 120
	// Every pair with i ≥ 40 fails, plus a scattering of earlier pairs;
	// the sequential first failure is (13, 77).
	failing := func(i, j int) bool {
		return i >= 40 || (i == 13 && j == 77) || (i == 13 && j == 90) || (i == 25 && j == 26)
	}
	dist := func(i, j int) (float64, error) {
		if failing(i, j) {
			return 0, fmt.Errorf("boom(%d,%d)", i, j)
		}
		return 1, nil
	}
	for _, par := range []int{1, 2, 4, 8} {
		_, err := Compute(context.Background(), n, dist, Options{Parallelism: par, SequentialCutoff: -1})
		if err == nil {
			t.Fatalf("par=%d: expected error", par)
		}
		var pe *PairError
		if !errors.As(err, &pe) {
			t.Fatalf("par=%d: error %T is not a PairError", par, err)
		}
		if pe.I != 13 || pe.J != 77 {
			t.Errorf("par=%d: reported pair (%d,%d), want (13,77)", par, pe.I, pe.J)
		}
		if want := "boom(13,77)"; pe.Err.Error() != want {
			t.Errorf("par=%d: wrapped error %q, want %q", par, pe.Err, want)
		}
	}
}

// Property test: for random failure sets, parallel error == sequential
// error, and successful runs agree cell-for-cell.
func TestErrorOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(60)
		fail := make(map[int]bool)
		for k := 0; k < rng.Intn(6); k++ {
			i := rng.Intn(n - 1)
			j := i + 1 + rng.Intn(n-i-1)
			fail[i*n+j] = true
		}
		dist := func(i, j int) (float64, error) {
			if fail[i*n+j] {
				return 0, fmt.Errorf("fail %d %d", i, j)
			}
			return float64(i) + float64(j)/1000, nil
		}
		seqM, seqErr := Compute(context.Background(), n, dist, Options{Parallelism: 1, SequentialCutoff: -1})
		parM, parErr := Compute(context.Background(), n, dist, Options{Parallelism: 6, SequentialCutoff: -1})
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("trial %d: seq err %v, par err %v", trial, seqErr, parErr)
		}
		if seqErr != nil {
			if seqErr.Error() != parErr.Error() {
				t.Fatalf("trial %d: seq %q != par %q", trial, seqErr, parErr)
			}
			continue
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if seqM.At(i, j) != parM.At(i, j) {
					t.Fatalf("trial %d: mismatch at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 200
	var calls atomic.Int64
	dist := func(i, j int) (float64, error) {
		if calls.Add(1) == 500 {
			cancel()
		}
		return 1, nil
	}
	_, err := Compute(ctx, n, dist, Options{Parallelism: 4, SequentialCutoff: -1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := calls.Load(); c >= int64(n*(n-1)/2) {
		t.Errorf("cancellation did not stop work early: %d calls", c)
	}
}

func TestContextCancellationSequential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	dist := func(i, j int) (float64, error) {
		if calls.Add(1) == 300 {
			cancel()
		}
		return 1, nil
	}
	_, err := Compute(ctx, 100, dist, Options{Parallelism: 1, SequentialCutoff: -1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dist := func(i, j int) (float64, error) {
		t.Error("dist called under pre-canceled context")
		return 0, nil
	}
	if _, err := Compute(ctx, 50, dist, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Below the cutoff, Compute must not spin up workers: a dist function
// that records goroutine fan-out via call interleaving can't observe
// that directly, so instead assert via Options.workers.
func TestSequentialCutoff(t *testing.T) {
	if w := (Options{Parallelism: 8}).workers(DefaultSequentialCutoff - 1); w != 1 {
		t.Errorf("below default cutoff: workers = %d, want 1", w)
	}
	if w := (Options{Parallelism: 0, SequentialCutoff: 10}).workers(9); w != 1 {
		t.Errorf("below explicit cutoff: workers = %d, want 1", w)
	}
	if w := (Options{Parallelism: 2, SequentialCutoff: -1}).workers(2); w != 2 {
		t.Errorf("cutoff disabled: workers = %d, want 2", w)
	}
}

func TestDistFuncAdapter(t *testing.T) {
	m, err := Compute(context.Background(), 3, absDist([]float64{0, 2, 7}), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := m.DistFunc()
	if f(0, 2) != 7 || f(2, 1) != 5 {
		t.Errorf("adapter: f(0,2)=%v f(2,1)=%v", f(0, 2), f(2, 1))
	}
}

func BenchmarkCompute(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{256, 1024} {
		pts := randomPoints(rng, n)
		// A dist with enough work per call (~1µs) to resemble an EMD
		// evaluation rather than a single subtraction.
		dist := func(i, j int) (float64, error) {
			var acc float64
			for k := 0; k < 200; k++ {
				acc += math.Sqrt(math.Abs(pts[i]-pts[j]) + float64(k))
			}
			return acc, nil
		}
		for _, par := range []int{1, 0} {
			name := fmt.Sprintf("n=%d/par=seq", n)
			if par == 0 {
				name = fmt.Sprintf("n=%d/par=numcpu", n)
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Compute(context.Background(), n, dist, Options{Parallelism: par, SequentialCutoff: -1}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
