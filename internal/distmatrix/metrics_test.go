package distmatrix

import (
	"context"
	"math"
	"testing"

	"plotters/internal/metrics"
)

// Both execution paths must account for every pair exactly once and
// report the pool shape.
func TestComputeMetrics(t *testing.T) {
	dist := func(i, j int) (float64, error) { return math.Abs(float64(i - j)), nil }
	for _, tc := range []struct {
		name        string
		n           int
		parallelism int
		wantWorkers int64
	}{
		{"sequential", 100, 1, 1},
		{"parallel", 100, 4, 4},
		{"cutoff forces sequential", 10, 4, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := metrics.New()
			_, err := Compute(context.Background(), tc.n, dist,
				Options{Parallelism: tc.parallelism, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			snap := reg.TakeSnapshot()
			wantPairs := int64(tc.n) * int64(tc.n-1) / 2
			if got := snap.Counters["distmatrix/pairs"]; got != wantPairs {
				t.Errorf("pairs = %d, want %d", got, wantPairs)
			}
			if got := snap.Gauges["distmatrix/workers"]; got != tc.wantWorkers {
				t.Errorf("workers = %d, want %d", got, tc.wantWorkers)
			}
			if len(snap.Histograms) != 1 || snap.Histograms[0].Name != "distmatrix/worker_busy" {
				t.Fatalf("histograms = %+v", snap.Histograms)
			}
			// One busy-time observation per worker (sequential counts as one).
			if got := snap.Histograms[0].Count; got != tc.wantWorkers {
				t.Errorf("worker_busy observations = %d, want %d", got, tc.wantWorkers)
			}
		})
	}
}

// Metrics must not change the computed matrix.
func TestComputeMetricsSameValues(t *testing.T) {
	dist := func(i, j int) (float64, error) { return float64(i*31 + j), nil }
	plain, err := Compute(context.Background(), 80, dist, Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	metered, err := Compute(context.Background(), 80, dist,
		Options{Parallelism: 3, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		for j := 0; j < 80; j++ {
			if plain.At(i, j) != metered.At(i, j) {
				t.Fatalf("cell (%d,%d) differs: %v vs %v", i, j, plain.At(i, j), metered.At(i, j))
			}
		}
	}
}
