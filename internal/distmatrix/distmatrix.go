// Package distmatrix computes symmetric pairwise distance matrices in
// parallel. It exists because the θ_hm test's Earth Mover's Distance
// matrix is the FindPlotters pipeline's dominant cost — O(n²) EMD
// evaluations over per-host histograms before any clustering happens —
// and that work is embarrassingly parallel: every pair is independent.
//
// The upper triangle is sharded into row blocks handed to a worker pool
// bounded by runtime.NumCPU. Row blocks (rather than individual pairs or
// interleaved rows) keep each worker walking contiguous memory in the
// flat backing array and reusing its row item against a streak of
// partners, which is what the cache wants. Because row i holds n-1-i
// pairs, blocks are balanced by pair count, not row count: early rows
// travel in smaller blocks than late rows.
//
// Guarantees:
//
//   - The parallel result is bit-identical to the sequential one: the
//     same dist(i, j) calls produce the same float64s regardless of the
//     order workers make them, and each cell is written exactly once.
//   - Errors are deterministic: if dist fails for several pairs, Compute
//     reports the lexicographically smallest (i, j), exactly as a
//     sequential i-then-j loop would, no matter which worker saw its
//     error first.
//   - Cancellation: a canceled context stops the computation promptly
//     and Compute returns ctx.Err().
//
// Small inputs (below Options.SequentialCutoff) skip the pool entirely —
// goroutine startup costs more than the matrix for tiny n.
package distmatrix

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"plotters/internal/metrics"
)

// DistFunc reports the distance between items i and j (i < j). It must
// be safe for concurrent calls from multiple goroutines.
type DistFunc func(i, j int) (float64, error)

// BoundFunc reports a lower bound on the distance between items i and j
// (i < j): Bound(i, j) <= dist(i, j) up to float rounding. It must be
// cheap relative to DistFunc and safe for concurrent calls.
type BoundFunc func(i, j int) float64

// Sentinel is the matrix value stored for a pair whose distance provably
// exceeds Options.Cut. +Inf is deliberate: average-linkage clustering
// arithmetic absorbs it (any cluster pair containing a sentinel member
// pair averages to +Inf), which is exactly the "never merged below the
// cut" semantics the θ_hm pruning contract needs.
var Sentinel = math.Inf(1)

// IsSentinel reports whether a matrix value is the above-cut sentinel.
func IsSentinel(v float64) bool { return math.IsInf(v, 1) }

// Matrix is a symmetric n×n distance matrix over a flat backing slice
// (row-major), with a zero diagonal. The flat layout halves the pointer
// chasing of a [][]float64 and lets one allocation serve the whole
// matrix.
type Matrix struct {
	n    int
	data []float64
}

// New returns a zero n×n matrix.
func New(n int) *Matrix {
	if n < 0 {
		n = 0
	}
	return &Matrix{n: n, data: make([]float64, n*n)}
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.n }

// At returns the distance between items i and j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.n+j] }

// set writes both symmetric cells.
func (m *Matrix) set(i, j int, v float64) {
	m.data[i*m.n+j] = v
	m.data[j*m.n+i] = v
}

// DistFunc adapts the matrix to the func(i, j int) float64 shape the
// cluster package consumes.
func (m *Matrix) DistFunc() func(i, j int) float64 {
	return m.At
}

// Options tunes Compute. The zero value asks for full parallelism with
// the default sequential cutoff.
type Options struct {
	// Parallelism bounds the worker pool: 0 (or negative) means
	// runtime.NumCPU(), 1 forces the sequential path. Explicit values
	// above NumCPU are honored — the workload is CPU-bound so they
	// rarely help, but they keep the parallel path testable on
	// single-core machines.
	Parallelism int
	// SequentialCutoff is the matrix dimension below which Compute runs
	// sequentially even when Parallelism allows more. 0 means
	// DefaultSequentialCutoff; negative disables the cutoff.
	SequentialCutoff int
	// Metrics, when non-nil, receives the computation's statistics:
	// the "distmatrix/pairs" counter (distance evaluations performed),
	// the "distmatrix/workers" gauge (effective pool size), and the
	// "distmatrix/worker_busy" histogram (each worker's busy wall time,
	// whose spread exposes load imbalance). With Cut > 0 the pruning
	// engine additionally reports the "distmatrix/pairs_total",
	// "distmatrix/pairs_pruned_bound", "distmatrix/pairs_pruned_pivot",
	// and "distmatrix/pairs_gated" counters, the per-worker
	// "distmatrix/prefilter_busy" / "distmatrix/exact_busy" histograms
	// (time split between the cheap bound passes and the exact distance
	// evaluations), and a "distmatrix/pivots" stage timer around pivot
	// selection. Recording happens per worker lifetime, never per pair,
	// so the hot loops are untouched.
	Metrics *metrics.Registry

	// Cut, when positive, enables gating: every pair whose distance
	// exceeds Cut is stored as Sentinel instead of its exact value. The
	// gated matrix is a pure function of the exact distances and Cut —
	// Bound and Pivots change how many exact evaluations are needed to
	// produce it, never its contents. Zero (the default) disables
	// gating and pruning entirely.
	Cut float64
	// Bound, when non-nil (and Cut > 0), is the prefilter: a pair whose
	// lower bound already exceeds Cut skips its exact evaluation and is
	// stored as Sentinel directly. Admissibility (Bound <= dist) is the
	// caller's contract; a small relative slack absorbs float rounding
	// between the two computations.
	Bound BoundFunc
	// Pivots, when positive (and Cut > 0), layers triangle-inequality
	// pruning behind the prefilter: the engine computes exact distances
	// from every item to Pivots pivot items (chosen by deterministic
	// farthest-point selection), and |d(i,p) − d(j,p)| lower-bounds
	// d(i,j) for any metric distance. Only meaningful when dist is a
	// metric — 1-D EMD is.
	Pivots int
	// Stats, when non-nil (and Cut > 0), accumulates pruning tallies.
	// Fields are updated atomically; read them after Compute returns.
	Stats *PruneStats
}

// PruneStats tallies the pruning engine's work. On a successful Compute,
// Total = PrunedBound + PrunedPivot + Exact, and Exact is the number of
// exact distance evaluations performed (pivot-phase rows included).
type PruneStats struct {
	// Total is the number of pairs in the upper triangle.
	Total int64
	// PrunedBound counts pairs skipped by the prefilter bound.
	PrunedBound int64
	// PrunedPivot counts pairs skipped by the pivot triangle bound.
	PrunedPivot int64
	// Exact counts exact distance evaluations (each pair at most once).
	Exact int64
	// Gated counts exactly-evaluated pairs whose distance exceeded Cut
	// and was stored as Sentinel.
	Gated int64
}

// boundSlack is the relative margin added to Cut before comparing lower
// bounds against it: a bound computed by a different float summation than
// the exact distance can exceed it by a few ulps on near-equal pairs, and
// a false prune there would break the gated-matrix invariant. The exact
// value's own gate comparison uses Cut unmodified.
const boundSlack = 1e-9

// DefaultSequentialCutoff is the default n below which the worker pool
// is not worth its startup cost: a 48×48 matrix is ~1.1k pairs, on the
// order of the cost of spinning up and tearing down the pool itself.
const DefaultSequentialCutoff = 48

// workers resolves the effective worker count for an n×n matrix.
func (o Options) workers(n int) int {
	p := o.Parallelism
	if p <= 0 {
		p = runtime.NumCPU()
	}
	cutoff := o.SequentialCutoff
	if cutoff == 0 {
		cutoff = DefaultSequentialCutoff
	}
	if n < cutoff {
		return 1
	}
	return p
}

// Compute fills a symmetric n×n matrix from dist. See the package
// comment for the parallel execution and determinism guarantees.
func Compute(ctx context.Context, n int, dist DistFunc, opts Options) (*Matrix, error) {
	if n < 0 {
		return nil, fmt.Errorf("distmatrix: negative dimension %d", n)
	}
	m := New(n)
	if n < 2 {
		return m, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := opts.workers(n)
	opts.Metrics.Gauge("distmatrix/workers").Set(int64(workers))
	if opts.Cut > 0 {
		e, err := newEngine(ctx, m, dist, opts)
		if err != nil {
			return nil, err
		}
		if workers <= 1 {
			err = computeSeqPruned(ctx, e)
		} else {
			err = computeParPruned(ctx, e, workers)
		}
		if err != nil {
			return nil, err
		}
		return m, nil
	}
	if workers <= 1 {
		if err := computeSeq(ctx, m, dist, opts.Metrics); err != nil {
			return nil, err
		}
		return m, nil
	}
	if err := computePar(ctx, m, dist, workers, opts.Metrics); err != nil {
		return nil, err
	}
	return m, nil
}

// ctxCheckStride is how many pairs a loop computes between context
// polls; EMD evaluations are microseconds, so this keeps cancellation
// latency well under a millisecond without a per-pair atomic load.
const ctxCheckStride = 256

// computeSeq is the deterministic reference path: rows ascending, then
// columns ascending, stopping at the first error.
func computeSeq(ctx context.Context, m *Matrix, dist DistFunc, reg *metrics.Registry) error {
	done := ctx.Done()
	pairs := 0
	if reg != nil {
		start := time.Now()
		defer func() {
			reg.Histogram("distmatrix/worker_busy").Observe(time.Since(start))
			reg.Counter("distmatrix/pairs").Add(int64(pairs))
		}()
	}
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if pairs++; pairs%ctxCheckStride == 0 && done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			v, err := dist(i, j)
			if err != nil {
				return pairError(i, j, err)
			}
			m.set(i, j, v)
		}
	}
	return nil
}

// pairError wraps a distance error with its pair for the caller.
func pairError(i, j int, err error) error {
	return &PairError{I: i, J: j, Err: err}
}

// PairError reports which pair a distance evaluation failed on. Compute
// always surfaces the failing pair that a sequential loop would have hit
// first.
type PairError struct {
	I, J int
	Err  error
}

func (e *PairError) Error() string {
	return fmt.Sprintf("distmatrix: pair (%d,%d): %v", e.I, e.J, e.Err)
}

// Unwrap exposes the underlying distance error.
func (e *PairError) Unwrap() error { return e.Err }

// computePar shards the upper triangle across workers.
//
// Work distribution: an atomic row cursor hands out blocks of
// consecutive rows. The block size for a grab starting at row r is
// chosen so each block holds roughly targetPairs pairs — rows near the
// top of the triangle are long, rows near the bottom short, so blocks
// grow as the cursor descends. Grabbing blocks (not single rows) keeps
// the cursor contention negligible; sizing them by pair count keeps the
// tail balanced.
//
// Error determinism: workers do not stop at the first error they see.
// Instead, the linear index i*n+j of the smallest erroring pair found so
// far is kept in an atomic; workers skip any pair at or beyond it
// (nothing past that pair can matter — sequential execution would have
// stopped there) and keep refining it downward. Every pair smaller than
// the final bound is therefore evaluated, so the reported error is
// exactly the one the sequential loop reports. Healthy runs never touch
// the error path's mutex.
func computePar(ctx context.Context, m *Matrix, dist DistFunc, workers int, reg *metrics.Registry) error {
	n := m.n
	totalPairs := n * (n - 1) / 2
	// ~8 blocks per worker balances the tail without cursor thrash.
	targetPairs := totalPairs / (workers * 8)
	if targetPairs < ctxCheckStride {
		targetPairs = ctxCheckStride
	}

	var (
		cursor   atomic.Int64 // next unclaimed row
		errBound atomic.Int64 // linear index of smallest erroring pair so far
		errMu    sync.Mutex
		errs     = map[int64]error{} // linear index -> distance error
		wg       sync.WaitGroup
	)
	errBound.Store(int64(n) * int64(n)) // past every real pair

	done := ctx.Done()
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}

	// Busy time and pair tallies are recorded once per worker lifetime —
	// the per-pair loop below stays free of metrics calls.
	pairsCtr := reg.Counter("distmatrix/pairs")
	busyHist := reg.Histogram("distmatrix/worker_busy")

	worker := func() {
		defer wg.Done()
		sinceCheck := 0
		computed := 0
		if reg != nil {
			start := time.Now()
			defer func() {
				busyHist.Observe(time.Since(start))
				pairsCtr.Add(int64(computed))
			}()
		}
		for {
			// Claim a row block sized to ~targetPairs pairs.
			start := int(cursor.Load())
			var end int
			for {
				if start >= n-1 {
					return
				}
				end = start
				pairs := 0
				for end < n-1 && pairs < targetPairs {
					pairs += n - 1 - end
					end++
				}
				if cursor.CompareAndSwap(int64(start), int64(end)) {
					break
				}
				start = int(cursor.Load())
			}
			for i := start; i < end; i++ {
				rowBase := int64(i) * int64(n)
				if rowBase+int64(i)+1 >= errBound.Load() {
					// Every remaining pair of this block is at or past
					// the current first error; sequential execution
					// would never reach them.
					return
				}
				for j := i + 1; j < n; j++ {
					if sinceCheck++; sinceCheck >= ctxCheckStride {
						sinceCheck = 0
						if canceled() {
							return
						}
					}
					idx := rowBase + int64(j)
					if idx >= errBound.Load() {
						break // rest of the row is past the first error
					}
					computed++
					v, err := dist(i, j)
					if err != nil {
						errMu.Lock()
						errs[idx] = err
						errMu.Unlock()
						// Ratchet the bound down to this pair.
						for {
							cur := errBound.Load()
							if idx >= cur || errBound.CompareAndSwap(cur, idx) {
								break
							}
						}
						break
					}
					m.set(i, j, v)
				}
			}
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()

	if canceled() {
		return ctx.Err()
	}
	if bound := errBound.Load(); bound < int64(n)*int64(n) {
		i, j := int(bound/int64(n)), int(bound%int64(n))
		errMu.Lock()
		err := errs[bound]
		errMu.Unlock()
		return pairError(i, j, err)
	}
	return nil
}
