package evasion

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"plotters/internal/flow"
)

func t0() time.Time {
	return time.Date(2007, time.November, 5, 0, 0, 0, 0, time.UTC)
}

func rec(src, dst flow.IP, at time.Time, state flow.ConnState, bytes uint64) flow.Record {
	return flow.Record{
		Src: src, Dst: dst, SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
		Start: at, End: at.Add(time.Second),
		SrcPkts: 2, DstPkts: 2, SrcBytes: bytes, DstBytes: 10, State: state,
	}
}

func TestInflateVolume(t *testing.T) {
	records := []flow.Record{
		rec(1, 2, t0(), flow.StateEstablished, 100),
		rec(1, 2, t0().Add(time.Minute), flow.StateFailed, 100),
	}
	out, err := InflateVolume(records, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].SrcBytes != 300 {
		t.Errorf("successful flow bytes = %d, want 300", out[0].SrcBytes)
	}
	if out[1].SrcBytes != 100 {
		t.Errorf("failed flow bytes changed: %d", out[1].SrcBytes)
	}
	if records[0].SrcBytes != 100 {
		t.Error("input mutated")
	}
	if _, err := InflateVolume(records, 0); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := InflateVolume(records, -1); err == nil {
		t.Error("negative factor accepted")
	}
}

func TestInflateVolumeSaturatesAtCounterMax(t *testing.T) {
	r := rec(1, 2, t0(), flow.StateEstablished, math.MaxUint64/2)
	r.SrcPkts = math.MaxUint32 - 1

	// Right at the boundary: MaxUint32-1 packets × factor 1 + 1 lands
	// exactly on the maximum without saturating past it.
	out, err := InflateVolume([]flow.Record{r}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].SrcPkts != math.MaxUint32 {
		t.Errorf("boundary: SrcPkts = %d, want %d", out[0].SrcPkts, uint32(math.MaxUint32))
	}

	// Past the boundary: the pre-fix cast wrapped (to 0 on amd64); the
	// counters must saturate like the collector's do.
	out, err = InflateVolume([]flow.Record{r}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].SrcPkts != math.MaxUint32 {
		t.Errorf("overflow: SrcPkts = %d, want saturation at %d", out[0].SrcPkts, uint32(math.MaxUint32))
	}
	if out[0].SrcBytes != math.MaxUint64 {
		t.Errorf("overflow: SrcBytes = %d, want saturation at %d", out[0].SrcBytes, uint64(math.MaxUint64))
	}
}

func TestSlowStartContacts(t *testing.T) {
	records := []flow.Record{
		rec(1, 2, t0(), flow.StateEstablished, 100),
		rec(1, 2, t0().Add(time.Minute), flow.StateEstablished, 100),
		rec(1, 3, t0().Add(2*time.Minute), flow.StateEstablished, 100),
	}
	d := 10 * time.Minute
	out, err := SlowStartContacts(records, d, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(records) {
		t.Fatalf("len = %d, want %d", len(out), len(records))
	}
	// Every pair shifts as a unit: the gap between the two 1→2 flows is
	// preserved even though both moved.
	var pair12 []flow.Record
	for _, r := range out {
		if r.Dst == 2 {
			pair12 = append(pair12, r)
		}
	}
	if len(pair12) != 2 {
		t.Fatalf("pair 1→2 has %d flows", len(pair12))
	}
	if gap := pair12[1].Start.Sub(pair12[0].Start); gap != time.Minute {
		t.Errorf("intra-pair gap = %v, want 1m (pair must shift as a unit)", gap)
	}
	for _, r := range out {
		shift := r.Start.Sub(records[0].Start)
		if shift < 0 || shift > d+2*time.Minute {
			t.Errorf("flow shifted outside [0, d]: start %v", r.Start)
		}
		if r.End.Sub(r.Start) != time.Second {
			t.Errorf("flow duration changed: %v", r.End.Sub(r.Start))
		}
	}
	if !records[0].Start.Equal(t0()) {
		t.Error("input mutated")
	}
	// d = 0 is the identity.
	same, err := SlowStartContacts(records, 0, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range same {
		if !same[i].Start.Equal(records[i].Start) {
			t.Errorf("d=0 moved record %d", i)
		}
	}
	if _, err := SlowStartContacts(records, -time.Second, rand.New(rand.NewSource(7))); err == nil {
		t.Error("negative ramp accepted")
	}
}

func TestSlowStartContactsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var records []flow.Record
	for i := 0; i < 200; i++ {
		records = append(records, rec(flow.IP(1+i%5), flow.IP(100+rng.Intn(40)),
			t0().Add(time.Duration(rng.Intn(3600))*time.Second), flow.StateEstablished, 500))
	}
	a, err := SlowStartContacts(records, time.Hour, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SlowStartContacts(records, time.Hour, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Start.Equal(b[i].Start) || a[i].Src != b[i].Src || a[i].Dst != b[i].Dst {
			t.Fatalf("same seed diverged at record %d", i)
		}
	}
}

func TestPadFlows(t *testing.T) {
	records := []flow.Record{
		rec(1, 2, t0(), flow.StateEstablished, 100),
		rec(1, 2, t0(), flow.StateFailed, 100),
	}
	out := PadFlows(records, 50)
	if out[0].SrcBytes != 150 || out[1].SrcBytes != 100 {
		t.Errorf("padded = %d/%d", out[0].SrcBytes, out[1].SrcBytes)
	}
}

func TestInflateChurn(t *testing.T) {
	// One host contacting one peer 100 times: 99 repeats.
	var records []flow.Record
	for i := 0; i < 100; i++ {
		records = append(records, rec(1, 2, t0().Add(time.Duration(i)*time.Minute), flow.StateEstablished, 10))
	}
	pool := make([]flow.IP, 500)
	for i := range pool {
		pool[i] = flow.IP(1000 + i)
	}
	rng := rand.New(rand.NewSource(1))
	out, err := InflateChurn(records, 3, pool, rng)
	if err != nil {
		t.Fatal(err)
	}
	fresh := 0
	for i := range out {
		if out[i].Dst != 2 {
			fresh++
		}
	}
	// rewriteProb = 2/3 of the 99 repeats ≈ 66.
	if fresh < 45 || fresh > 85 {
		t.Errorf("fresh contacts = %d, want ≈66", fresh)
	}
	// Factor 1 changes nothing.
	same, err := InflateChurn(records, 1, pool, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range same {
		if same[i].Dst != 2 {
			t.Fatal("factor 1 rewrote a destination")
		}
	}
	if _, err := InflateChurn(records, 0.5, pool, rng); err == nil {
		t.Error("factor < 1 accepted")
	}
	if _, err := InflateChurn(records, 2, nil, rng); err == nil {
		t.Error("empty pool accepted")
	}
}

func TestJitterRepeatContacts(t *testing.T) {
	var records []flow.Record
	for i := 0; i < 50; i++ {
		records = append(records, rec(1, 2, t0().Add(time.Duration(i)*time.Minute), flow.StateEstablished, 10))
	}
	rng := rand.New(rand.NewSource(2))
	d := 30 * time.Second
	out, err := JitterRepeatContacts(records, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(records) {
		t.Fatal("length changed")
	}
	// Output sorted.
	for i := 1; i < len(out); i++ {
		if out[i].Start.Before(out[i-1].Start) {
			t.Fatal("output not sorted")
		}
	}
	// The first contact to (1,2) must be unmoved; every record's shift is
	// within ±d of some original start time.
	moved := 0
	for _, r := range out {
		bestShift := time.Duration(math.MaxInt64)
		for _, orig := range records {
			shift := r.Start.Sub(orig.Start)
			if shift < 0 {
				shift = -shift
			}
			if shift < bestShift {
				bestShift = shift
			}
		}
		if bestShift > d {
			t.Fatalf("record shifted by more than ±d: %v", bestShift)
		}
		if bestShift > 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no record was jittered")
	}
	// Duration preserved.
	for i := range out {
		if out[i].End.Sub(out[i].Start) != time.Second {
			t.Fatal("flow duration changed")
		}
	}
	// d = 0 is the identity.
	same, err := JitterRepeatContacts(records, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range same {
		if !same[i].Start.Equal(records[i].Start) {
			t.Fatal("zero jitter moved a record")
		}
	}
	if _, err := JitterRepeatContacts(records, -time.Second, rng); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestJitterDestroysPeriodicity(t *testing.T) {
	// Perfectly periodic contacts; after ±5m jitter, the interstitial
	// variance must blow up.
	var records []flow.Record
	for i := 0; i < 200; i++ {
		records = append(records, rec(1, 2, t0().Add(time.Duration(i)*2*time.Minute), flow.StateEstablished, 10))
	}
	rng := rand.New(rand.NewSource(3))
	out, err := JitterRepeatContacts(records, 5*time.Minute, rng)
	if err != nil {
		t.Fatal(err)
	}
	variance := func(rs []flow.Record) float64 {
		var gaps []float64
		for i := 1; i < len(rs); i++ {
			gaps = append(gaps, rs[i].Start.Sub(rs[i-1].Start).Seconds())
		}
		var mean float64
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		var ss float64
		for _, g := range gaps {
			ss += (g - mean) * (g - mean)
		}
		return ss / float64(len(gaps))
	}
	if vOrig, vJit := variance(records), variance(out); vJit < 100*vOrig+1 {
		t.Errorf("jitter did not disperse timing: var %v -> %v", vOrig, vJit)
	}
}

func TestRequiredVolumeFactor(t *testing.T) {
	tests := []struct {
		avg, thr, want float64
	}{
		{100, 500, 5},
		{500, 500, 1},
		{800, 500, 1},
		{0, 500, 0},
	}
	for _, tt := range tests {
		if got := RequiredVolumeFactor(tt.avg, tt.thr); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("RequiredVolumeFactor(%v, %v) = %v, want %v", tt.avg, tt.thr, got, tt.want)
		}
	}
}

func TestRequiredChurnFactor(t *testing.T) {
	// 20 new of 100 total; to reach 90%: need x new with x/(80+x) = 0.9
	// → x = 720 → factor 36.
	if got := RequiredChurnFactor(20, 100, 0.9); math.Abs(got-36) > 1e-9 {
		t.Errorf("factor = %v, want 36", got)
	}
	// Already above target.
	if got := RequiredChurnFactor(95, 100, 0.9); got != 1 {
		t.Errorf("above-target factor = %v, want 1", got)
	}
	// Degenerate inputs.
	for _, tt := range [][3]int{{0, 100, 0}, {10, 0, 0}, {20, 10, 0}} {
		if got := RequiredChurnFactor(tt[0], tt[1], 0.9); got != 0 {
			t.Errorf("RequiredChurnFactor(%d,%d) = %v, want 0", tt[0], tt[1], got)
		}
	}
	// Unreachable target.
	if got := RequiredChurnFactor(20, 100, 1); got != 0 {
		t.Errorf("target=1 factor = %v, want 0", got)
	}
	// Verify the formula: applying the factor reaches the target.
	newPeers, total := 30, 120
	factor := RequiredChurnFactor(newPeers, total, 0.9)
	x := factor * float64(newPeers)
	old := float64(total - newPeers)
	if frac := x / (old + x); math.Abs(frac-0.9) > 1e-9 {
		t.Errorf("applying factor gives fraction %v, want 0.9", frac)
	}
}
