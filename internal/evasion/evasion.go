// Package evasion implements the §VI evasion transforms: modifications a
// Plotter could make to its traffic to slip past each detection test, so
// the cost of evasion can be quantified. Each transform rewrites a bot
// trace *before* it is overlaid; the evaluation then measures how the
// detection rate decays and what the behavioral change costs the botnet
// (extra volume, extra peers, slower command latency).
package evasion

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"plotters/internal/flow"
)

// InflateVolume multiplies the bytes uploaded on every successful flow by
// factor — the direct way to evade θ_vol, at the cost of conspicuous
// extra traffic. Counters saturate at their type maxima rather than
// wrapping, matching the collector's saturating-counter convention. The
// input is not modified.
func InflateVolume(records []flow.Record, factor float64) ([]flow.Record, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("evasion: volume factor must be positive, got %v", factor)
	}
	out := make([]flow.Record, len(records))
	for i, r := range records {
		if !r.Failed() {
			r.SrcBytes = satU64(float64(r.SrcBytes) * factor)
			// More bytes means more packets on the wire.
			r.SrcPkts = satU32(float64(r.SrcPkts)*factor + 1)
		}
		out[i] = r
	}
	return out, nil
}

// satU32 converts a non-negative float to uint32, saturating at the
// maximum instead of wrapping (float-to-integer overflow is undefined
// in Go: the pre-fix cast produced 0 on amd64 for factor-inflated packet
// counts past 2³²).
func satU32(v float64) uint32 {
	if v >= math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(v)
}

// satU64 converts a non-negative float to uint64, saturating at the
// maximum instead of wrapping.
func satU64(v float64) uint64 {
	if v >= math.MaxUint64 {
		return math.MaxUint64
	}
	return uint64(v)
}

// PadFlows appends pad bytes of junk to every successful flow — the
// padding variant of volume evasion (e.g. bots attaching garbage to each
// control message).
func PadFlows(records []flow.Record, pad uint64) []flow.Record {
	out := make([]flow.Record, len(records))
	for i, r := range records {
		if !r.Failed() {
			r.SrcBytes += pad
		}
		out[i] = r
	}
	return out
}

// InflateChurn makes each bot appear to contact more new hosts: for every
// repeat contact, with probability (factor−1)/factor the destination is
// rewritten to a fresh, never-before-seen address — increasing the
// fraction of new destinations by roughly the given factor, the way a bot
// cycling through throwaway peers (or random scanning) would. Fresh
// addresses are drawn from freshPool via rng. The input is not modified.
func InflateChurn(records []flow.Record, factor float64, freshPool []flow.IP, rng *rand.Rand) ([]flow.Record, error) {
	if factor < 1 {
		return nil, fmt.Errorf("evasion: churn factor must be >= 1, got %v", factor)
	}
	if len(freshPool) == 0 {
		return nil, fmt.Errorf("evasion: empty fresh address pool")
	}
	rewriteProb := (factor - 1) / factor
	seen := make(map[[2]uint32]bool)
	next := 0
	out := make([]flow.Record, len(records))
	// Process in time order so "repeat contact" matches the feature
	// extractor's view.
	idx := timeOrder(records)
	for _, i := range idx {
		r := records[i]
		key := [2]uint32{uint32(r.Src), uint32(r.Dst)}
		if seen[key] && rng.Float64() < rewriteProb {
			r.Dst = freshPool[next%len(freshPool)]
			next++
		} else {
			seen[key] = true
		}
		out[i] = r
	}
	return out, nil
}

// JitterRepeatContacts implements the paper's θ_hm evasion simulation:
// every connection to a peer the bot has previously contacted is shifted
// by a delay drawn uniformly from [−d, +d]. Randomizing repeat-contact
// times destroys the timer structure θ_hm clusters on, at the cost of
// slowing the botnet's command responsiveness by up to d. First contacts
// are left in place. The result is re-sorted by start time.
func JitterRepeatContacts(records []flow.Record, d time.Duration, rng *rand.Rand) ([]flow.Record, error) {
	if d < 0 {
		return nil, fmt.Errorf("evasion: jitter must be non-negative, got %v", d)
	}
	out := make([]flow.Record, len(records))
	seen := make(map[[2]uint32]bool)
	idx := timeOrder(records)
	for _, i := range idx {
		r := records[i]
		key := [2]uint32{uint32(r.Src), uint32(r.Dst)}
		if seen[key] && d > 0 {
			delta := time.Duration(rng.Int63n(int64(2*d)+1)) - d
			r.Start = r.Start.Add(delta)
			r.End = r.End.Add(delta)
		} else {
			seen[key] = true
		}
		out[i] = r
	}
	flow.SortByStart(out)
	return out, nil
}

// SlowStartContacts models a bot that rations peer rendezvous instead of
// bursting through its peer list: every (source, destination) pair's
// entire conversation is shifted later by a per-pair onset delay drawn
// uniformly from [0, d]. Spreading first contacts over the ramp flattens
// the per-hour new-destination fraction θ_churn keys on (peers whose
// onset lands past the collection window vanish from it entirely) and
// smears the shared rendezvous schedule, at the cost of delaying command
// reachability of each peer by up to d. The result is re-sorted by start
// time; the input is not modified.
func SlowStartContacts(records []flow.Record, d time.Duration, rng *rand.Rand) ([]flow.Record, error) {
	if d < 0 {
		return nil, fmt.Errorf("evasion: slow-start ramp must be non-negative, got %v", d)
	}
	out := make([]flow.Record, len(records))
	onset := make(map[[2]uint32]time.Duration)
	idx := timeOrder(records)
	for _, i := range idx {
		r := records[i]
		key := [2]uint32{uint32(r.Src), uint32(r.Dst)}
		delay, ok := onset[key]
		if !ok {
			if d > 0 {
				delay = time.Duration(rng.Int63n(int64(d) + 1))
			}
			onset[key] = delay
		}
		r.Start = r.Start.Add(delay)
		r.End = r.End.Add(delay)
		out[i] = r
	}
	flow.SortByStart(out)
	return out, nil
}

// timeOrder returns record indices sorted by start time (stable).
func timeOrder(records []flow.Record) []int {
	idx := make([]int, len(records))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return records[idx[a]].Start.Before(records[idx[b]].Start)
	})
	return idx
}

// RequiredVolumeFactor returns how much a host must multiply its average
// flow size to reach the threshold — the paper's Figure 11(a) metric
// (≈5× for the median Storm bot, ≈1.3× for the median Nugache bot).
func RequiredVolumeFactor(avgBytesPerFlow, threshold float64) float64 {
	if avgBytesPerFlow <= 0 {
		return 0
	}
	if avgBytesPerFlow >= threshold {
		return 1
	}
	return threshold / avgBytesPerFlow
}

// RequiredChurnFactor returns by what factor a host must increase its
// count of new destinations to lift its new-IP fraction to target while
// keeping its existing peers — Figure 11(b)'s metric (≥1.5× to reach a
// typical 90% threshold). With n new and k total destinations, adding x−n
// fresh one-off contacts gives fraction (x)/(k−n+x); solving for the
// factor x/n.
func RequiredChurnFactor(newPeers, totalPeers int, target float64) float64 {
	if newPeers <= 0 || totalPeers <= 0 || newPeers > totalPeers {
		return 0
	}
	current := float64(newPeers) / float64(totalPeers)
	if current >= target {
		return 1
	}
	if target >= 1 {
		return 0 // unreachable while keeping any old peer
	}
	old := float64(totalPeers - newPeers)
	needed := target * old / (1 - target)
	return needed / float64(newPeers)
}
