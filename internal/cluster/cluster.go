// Package cluster implements the agglomerative hierarchical clustering
// used by the θ_hm test: hosts whose interstitial-time histograms are
// close under the Earth Mover's Distance are merged bottom-up with
// average linkage (UPGMA), producing a dendrogram whose link weights are
// the average inter-cluster distances. The final clusters are formed by
// cutting the top fraction (the paper uses 5%) of links with the largest
// weights.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoItems is returned when clustering is requested over zero items.
var ErrNoItems = errors.New("cluster: no items")

// DistFunc reports the distance between items i and j. It must be
// symmetric and non-negative; it is only ever called with i != j. A
// +Inf value is the above-cut sentinel a pruned distance matrix stores
// for pairs whose distance provably exceeds the clustering cut (see
// internal/distmatrix): legal input, treated as "further than anything
// finite". The Lance–Williams average absorbs it — any cluster pair
// containing a sentinel member pair averages to +Inf — so sentinel
// links can only form after every finite merge, and a top-fraction cut
// that removes them never merges across a sentinel.
type DistFunc func(i, j int) float64

// Merge records one agglomeration step. Cluster ids 0..n-1 are the
// original items (leaves); the merge at step k creates cluster id n+k.
type Merge struct {
	// A and B are the ids of the merged clusters.
	A, B int
	// Parent is the id of the resulting cluster.
	Parent int
	// Weight is the average-linkage distance between A and B at merge
	// time — the weight of this dendrogram link.
	Weight float64
}

// Dendrogram is the full merge tree produced by Agglomerate.
type Dendrogram struct {
	n      int
	merges []Merge
}

// Agglomerate builds a complete average-linkage dendrogram over n items.
// Pairwise distances are read once into a working matrix and updated with
// the Lance–Williams recurrence, so dist is called exactly n·(n−1)/2
// times.
//
// The closest active pair at each step is found through a per-row
// nearest-neighbor cache: rowmin[i] / nn[i] hold the smallest distance in
// row i's upper triangle and the column attaining it, so one step costs
// an O(n) scan over cached row minima plus recomputation of only the rows
// a merge invalidated. That is O(n²) amortized in practice (O(n³) in
// adversarial tie-heavy inputs) versus the naive O(n³) full rescan —
// the difference between clustering and the distance matrix dominating
// θ_hm at thousands of hosts. Merge order, including ties (broken toward
// the smallest slot indices), is identical to the full rescan. O(n²)
// space.
func Agglomerate(n int, dist DistFunc) (*Dendrogram, error) {
	if n <= 0 {
		return nil, ErrNoItems
	}
	d := &Dendrogram{n: n}
	if n == 1 {
		return d, nil
	}

	// Working distance matrix over active clusters, indexed by slot.
	// slotID maps slot -> current cluster id; size maps slot -> member
	// count. Merged-away slots are marked inactive.
	mat := make([][]float64, n)
	for i := range mat {
		mat[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := dist(i, j)
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("cluster: invalid distance %v between %d and %d", v, i, j)
			}
			mat[i][j] = v
			mat[j][i] = v
		}
	}
	active := make([]bool, n)
	size := make([]int, n)
	slotID := make([]int, n)
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
		slotID[i] = i
	}

	// rowmin[i] is min over active j > i of mat[i][j]; nn[i] the smallest
	// such j attaining it (-1 / +Inf when row i has no active successor
	// with a finite distance — sentinel entries are deliberately never
	// cached, so a row of sentinels looks identical to an empty row and
	// the selection loop's fallback handles both).
	// Scanning j ascending with a strict < reproduces the smallest-j tie
	// break of a full rescan.
	rowmin := make([]float64, n)
	nn := make([]int, n)
	recompute := func(i int) {
		rowmin[i] = math.Inf(1)
		nn[i] = -1
		for j := i + 1; j < n; j++ {
			if active[j] && mat[i][j] < rowmin[i] {
				rowmin[i] = mat[i][j]
				nn[i] = j
			}
		}
	}
	for i := 0; i < n; i++ {
		recompute(i)
	}

	d.merges = make([]Merge, 0, n-1)
	for step := 0; step < n-1; step++ {
		// Closest active pair: the smallest cached row minimum, scanning
		// rows ascending with strict < so ties break toward the smallest
		// (i, j) exactly as a full upper-triangle rescan would.
		bi := -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if active[i] && rowmin[i] < best {
				best = rowmin[i]
				bi = i
			}
		}
		var bj int
		if bi < 0 {
			// Every remaining inter-cluster distance is the above-cut
			// sentinel (+Inf): the nearest-neighbor cache records finite
			// distances only, so no row qualified. A pruned θ_hm matrix
			// produces exactly this once the below-cut structure has
			// merged. Finish the dendrogram deterministically — the two
			// smallest active slots, weight +Inf — so CutTopFraction
			// removes these links first and never merges across a
			// sentinel.
			for i := 0; i < n && bi < 0; i++ {
				if active[i] {
					bi = i
				}
			}
			bj = -1
			for j := bi + 1; j < n && bj < 0; j++ {
				if active[j] {
					bj = j
				}
			}
		} else {
			bj = nn[bi]
		}
		parent := n + step
		d.merges = append(d.merges, Merge{A: slotID[bi], B: slotID[bj], Parent: parent, Weight: best})

		// Lance–Williams average-linkage update: the merged cluster lives
		// in slot bi; slot bj becomes inactive.
		ni, nj := float64(size[bi]), float64(size[bj])
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			upd := (ni*mat[bi][k] + nj*mat[bj][k]) / (ni + nj)
			mat[bi][k] = upd
			mat[k][bi] = upd
		}
		size[bi] += size[bj]
		slotID[bi] = parent
		active[bj] = false

		// Repair the caches the merge invalidated (bi < bj always):
		//   - row bi: every mat[bi][k] changed;
		//   - rows k < bj pointing at bj: their minimum vanished;
		//   - rows k < bi: mat[k][bi] changed — if the row pointed at bi
		//     the old minimum is stale (the value may have risen), else
		//     the new value can only improve the cached minimum, with a
		//     smallest-j tie break against the incumbent.
		recompute(bi)
		for k := 0; k < bj; k++ {
			if !active[k] || k == bi {
				continue
			}
			if nn[k] == bj {
				recompute(k)
				continue
			}
			if k < bi {
				if nn[k] == bi {
					recompute(k)
				} else if v := mat[k][bi]; v < rowmin[k] || (v == rowmin[k] && bi < nn[k]) {
					rowmin[k] = v
					nn[k] = bi
				}
			}
		}
	}
	return d, nil
}

// Leaves returns the number of original items.
func (d *Dendrogram) Leaves() int { return d.n }

// Merges returns the agglomeration steps in merge order. The returned
// slice is owned by the dendrogram; callers must not modify it.
func (d *Dendrogram) Merges() []Merge { return d.merges }

// Cut removes the `removeLinks` largest-weight links (ties broken toward
// later merges) and returns the connected components of the remaining
// forest as clusters of leaf indices. Each cluster's members are sorted
// ascending, and clusters are ordered by their smallest member.
//
// Cut(0) returns a single cluster of all leaves; Cut(k) for k >= the
// number of links returns all singletons.
func (d *Dendrogram) Cut(removeLinks int) [][]int {
	if removeLinks < 0 {
		removeLinks = 0
	}
	keep := make([]bool, len(d.merges))
	for i := range keep {
		keep[i] = true
	}
	if removeLinks > 0 {
		order := make([]int, len(d.merges))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ma, mb := d.merges[order[a]], d.merges[order[b]]
			if ma.Weight != mb.Weight {
				return ma.Weight > mb.Weight
			}
			return order[a] > order[b]
		})
		if removeLinks > len(order) {
			removeLinks = len(order)
		}
		for _, idx := range order[:removeLinks] {
			keep[idx] = false
		}
	}

	// Union-find over leaves and internal nodes.
	parent := make([]int, d.n+len(d.merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i, m := range d.merges {
		if keep[i] {
			union(m.A, m.Parent)
			union(m.B, m.Parent)
		} else {
			// A removed link still ties the two children to the internal
			// node's identity for bookkeeping of later merges: later kept
			// merges reference Parent, which must represent the union of
			// whatever remains connected through it. Connect Parent to A
			// only, so the link to B is the one severed.
			union(m.A, m.Parent)
		}
	}

	groups := make(map[int][]int)
	for leaf := 0; leaf < d.n; leaf++ {
		root := find(leaf)
		groups[root] = append(groups[root], leaf)
	}
	clusters := make([][]int, 0, len(groups))
	for _, members := range groups {
		sort.Ints(members)
		clusters = append(clusters, members)
	}
	sort.Slice(clusters, func(a, b int) bool { return clusters[a][0] < clusters[b][0] })
	return clusters
}

// CutTopFraction removes the ceil(frac · links) largest-weight links and
// returns the resulting clusters; the paper cuts frac = 0.05.
func (d *Dendrogram) CutTopFraction(frac float64) [][]int {
	if frac <= 0 || len(d.merges) == 0 {
		return d.Cut(0)
	}
	if frac >= 1 {
		return d.Cut(len(d.merges))
	}
	k := int(math.Ceil(frac * float64(len(d.merges))))
	return d.Cut(k)
}

// Diameter returns the maximum pairwise distance among members, i.e. the
// cluster diameter the θ_hm threshold τ_hm filters on. A cluster of fewer
// than two members has diameter 0.
func Diameter(members []int, dist DistFunc) float64 {
	var diam float64
	for a := 0; a < len(members); a++ {
		for b := a + 1; b < len(members); b++ {
			if v := dist(members[a], members[b]); v > diam {
				diam = v
			}
		}
	}
	return diam
}

// MeanPairwise returns the average pairwise distance among members — a
// robust alternative spread statistic to Diameter: one contaminated
// member inflates the maximum far more than the mean. A cluster of fewer
// than two members has spread 0.
func MeanPairwise(members []int, dist DistFunc) float64 {
	if len(members) < 2 {
		return 0
	}
	var sum float64
	var n int
	for a := 0; a < len(members); a++ {
		for b := a + 1; b < len(members); b++ {
			sum += dist(members[a], members[b])
			n++
		}
	}
	return sum / float64(n)
}
