package cluster

import (
	"math"
	"reflect"
	"testing"
)

// matDist adapts a literal matrix to a DistFunc.
func matDist(m [][]float64) DistFunc {
	return func(i, j int) float64 { return m[i][j] }
}

// TestAgglomerateAllSentinel: a matrix of nothing but above-cut
// sentinels must not panic (the nearest-neighbor cache holds no finite
// entry, so selection falls back) and must finish the dendrogram
// deterministically: smallest slots first, every link +Inf.
func TestAgglomerateAllSentinel(t *testing.T) {
	inf := math.Inf(1)
	n := 4
	d, err := Agglomerate(n, func(i, j int) float64 { return inf })
	if err != nil {
		t.Fatal(err)
	}
	merges := d.Merges()
	if len(merges) != n-1 {
		t.Fatalf("got %d merges, want %d", len(merges), n-1)
	}
	for k, m := range merges {
		if !math.IsInf(m.Weight, 1) {
			t.Errorf("merge %d weight = %v, want +Inf", k, m.Weight)
		}
	}
	// Deterministic chain: (0,1)->4, (4,2)->5, (5,3)->6.
	want := []Merge{{A: 0, B: 1, Parent: 4, Weight: inf}, {A: 4, B: 2, Parent: 5, Weight: inf}, {A: 5, B: 3, Parent: 6, Weight: inf}}
	if !reflect.DeepEqual(merges, want) {
		t.Errorf("merges = %+v, want %+v", merges, want)
	}
	// Cutting the sentinel links yields all singletons.
	got := d.Cut(3)
	if len(got) != 4 {
		t.Errorf("Cut(3) = %v, want 4 singletons", got)
	}
}

// TestAgglomerateSentinelPartition: two finite clumps separated by
// sentinels merge internally first (exact finite weights), the sentinel
// links form last, and cutting them recovers the partition — no merge
// ever crosses a sentinel below the cut.
func TestAgglomerateSentinelPartition(t *testing.T) {
	inf := math.Inf(1)
	// Items 0,1,2 are close; 3,4 are close; the groups are unbridgeable.
	m := [][]float64{
		{0, 1, 2, inf, inf},
		{1, 0, 1.5, inf, inf},
		{2, 1.5, 0, inf, inf},
		{inf, inf, inf, 0, 0.5},
		{inf, inf, inf, 0.5, 0},
	}
	d, err := Agglomerate(5, matDist(m))
	if err != nil {
		t.Fatal(err)
	}
	merges := d.Merges()
	if len(merges) != 4 {
		t.Fatalf("got %d merges", len(merges))
	}
	// Finite merges first: (3,4)@0.5, (0,1)@1, ({0,1},2)@1.75; sentinel
	// link last.
	if merges[0].Weight != 0.5 || merges[0].A != 3 || merges[0].B != 4 {
		t.Errorf("merge 0 = %+v, want (3,4)@0.5", merges[0])
	}
	if merges[1].Weight != 1 || merges[1].A != 0 || merges[1].B != 1 {
		t.Errorf("merge 1 = %+v, want (0,1)@1", merges[1])
	}
	if merges[2].Weight != 1.75 {
		t.Errorf("merge 2 = %+v, want weight 1.75", merges[2])
	}
	if !math.IsInf(merges[3].Weight, 1) {
		t.Errorf("final merge weight = %v, want +Inf", merges[3].Weight)
	}
	// One removed link (the sentinel) recovers the partition.
	got := d.Cut(1)
	want := [][]int{{0, 1, 2}, {3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Cut(1) = %v, want %v", got, want)
	}
}

// TestAgglomerateSentinelMatchesHugeFinite: replacing sentinels with a
// finite distance vastly above every real one must produce the same
// merge structure (sentinels behave as "very far", not as a special
// control path), with only the link weights differing on the far links.
func TestAgglomerateSentinelMatchesHugeFinite(t *testing.T) {
	inf := math.Inf(1)
	base := [][]float64{
		{0, 1, 9, 9},
		{1, 0, 9, 9},
		{9, 9, 0, 2},
		{9, 9, 2, 0},
	}
	sent := [][]float64{
		{0, 1, inf, inf},
		{1, 0, inf, inf},
		{inf, inf, 0, 2},
		{inf, inf, 2, 0},
	}
	df, err := Agglomerate(4, matDist(base))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Agglomerate(4, matDist(sent))
	if err != nil {
		t.Fatal(err)
	}
	mf, ms := df.Merges(), ds.Merges()
	for k := range mf {
		if mf[k].A != ms[k].A || mf[k].B != ms[k].B || mf[k].Parent != ms[k].Parent {
			t.Errorf("merge %d structure differs: finite %+v, sentinel %+v", k, mf[k], ms[k])
		}
	}
}

// TestDiameterSentinel: spread statistics over members that include a
// sentinel pair report +Inf — the caller's signal that the cut was too
// tight for this cluster.
func TestDiameterSentinel(t *testing.T) {
	inf := math.Inf(1)
	m := [][]float64{
		{0, 1, inf},
		{1, 0, 2},
		{inf, 2, 0},
	}
	if got := Diameter([]int{0, 1, 2}, matDist(m)); !math.IsInf(got, 1) {
		t.Errorf("Diameter = %v, want +Inf", got)
	}
	if got := MeanPairwise([]int{0, 1, 2}, matDist(m)); !math.IsInf(got, 1) {
		t.Errorf("MeanPairwise = %v, want +Inf", got)
	}
	if got := Diameter([]int{0, 1}, matDist(m)); got != 1 {
		t.Errorf("finite-pair Diameter = %v, want 1", got)
	}
}
