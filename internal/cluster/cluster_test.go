package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// matrixDist adapts a symmetric matrix to a DistFunc.
func matrixDist(m [][]float64) DistFunc {
	return func(i, j int) float64 { return m[i][j] }
}

func TestAgglomerateErrors(t *testing.T) {
	if _, err := Agglomerate(0, nil); err != ErrNoItems {
		t.Errorf("n=0 err = %v, want ErrNoItems", err)
	}
	if _, err := Agglomerate(-3, nil); err != ErrNoItems {
		t.Errorf("n<0 err = %v, want ErrNoItems", err)
	}
	bad := func(i, j int) float64 { return -1 }
	if _, err := Agglomerate(2, bad); err == nil {
		t.Error("negative distance: expected error")
	}
	nan := func(i, j int) float64 { return math.NaN() }
	if _, err := Agglomerate(2, nan); err == nil {
		t.Error("NaN distance: expected error")
	}
}

func TestAgglomerateSingleItem(t *testing.T) {
	d, err := Agglomerate(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Leaves() != 1 || len(d.Merges()) != 0 {
		t.Errorf("single item dendrogram: %d leaves, %d merges", d.Leaves(), len(d.Merges()))
	}
	clusters := d.Cut(0)
	if len(clusters) != 1 || len(clusters[0]) != 1 || clusters[0][0] != 0 {
		t.Errorf("Cut(0) = %v", clusters)
	}
}

func TestAgglomerateKnownOrder(t *testing.T) {
	// 0 and 1 are close (d=1), 2 is moderately far (d=4,5), 3 is far.
	m := [][]float64{
		{0, 1, 4, 20},
		{1, 0, 5, 20},
		{4, 5, 0, 20},
		{20, 20, 20, 0},
	}
	d, err := Agglomerate(4, matrixDist(m))
	if err != nil {
		t.Fatal(err)
	}
	merges := d.Merges()
	if len(merges) != 3 {
		t.Fatalf("merges = %d, want 3", len(merges))
	}
	// First merge: 0+1 at weight 1.
	if merges[0].A != 0 || merges[0].B != 1 || merges[0].Weight != 1 {
		t.Errorf("merge 0 = %+v", merges[0])
	}
	if merges[0].Parent != 4 {
		t.Errorf("merge 0 parent = %d, want 4", merges[0].Parent)
	}
	// Second: {0,1}+2 at average distance (4+5)/2 = 4.5.
	if merges[1].A != 4 || merges[1].B != 2 || merges[1].Weight != 4.5 {
		t.Errorf("merge 1 = %+v", merges[1])
	}
	// Third: everything + 3 at average 20.
	if merges[2].Weight != 20 {
		t.Errorf("merge 2 weight = %v, want 20", merges[2].Weight)
	}
}

func TestCutBoundaries(t *testing.T) {
	m := [][]float64{
		{0, 1, 4},
		{1, 0, 5},
		{4, 5, 0},
	}
	d, err := Agglomerate(3, matrixDist(m))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Cut(0); !reflect.DeepEqual(got, [][]int{{0, 1, 2}}) {
		t.Errorf("Cut(0) = %v", got)
	}
	if got := d.Cut(-5); !reflect.DeepEqual(got, [][]int{{0, 1, 2}}) {
		t.Errorf("Cut(-5) = %v", got)
	}
	if got := d.Cut(1); !reflect.DeepEqual(got, [][]int{{0, 1}, {2}}) {
		t.Errorf("Cut(1) = %v", got)
	}
	if got := d.Cut(2); !reflect.DeepEqual(got, [][]int{{0}, {1}, {2}}) {
		t.Errorf("Cut(2) = %v", got)
	}
	if got := d.Cut(99); !reflect.DeepEqual(got, [][]int{{0}, {1}, {2}}) {
		t.Errorf("Cut(99) = %v", got)
	}
}

func TestCutTopFraction(t *testing.T) {
	// Two tight blobs far apart: cutting any positive fraction must
	// separate them.
	pts := []float64{0, 0.1, 0.2, 100, 100.1, 100.2}
	dist := func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
	d, err := Agglomerate(len(pts), dist)
	if err != nil {
		t.Fatal(err)
	}
	clusters := d.CutTopFraction(0.2) // ceil(0.2*5) = 1 link
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	if !reflect.DeepEqual(clusters[0], []int{0, 1, 2}) || !reflect.DeepEqual(clusters[1], []int{3, 4, 5}) {
		t.Errorf("clusters = %v", clusters)
	}
	// frac <= 0 keeps everything together.
	if got := d.CutTopFraction(0); len(got) != 1 {
		t.Errorf("CutTopFraction(0) = %v", got)
	}
	// frac >= 1 shatters everything.
	if got := d.CutTopFraction(1); len(got) != len(pts) {
		t.Errorf("CutTopFraction(1) = %v", got)
	}
}

func TestCutTopFractionSingleLeaf(t *testing.T) {
	d, err := Agglomerate(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CutTopFraction(0.05); len(got) != 1 {
		t.Errorf("single leaf CutTopFraction = %v", got)
	}
}

// Average linkage is monotone: merge weights never decrease.
func TestAverageLinkageMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		m := randomDistMatrix(rng, n)
		d, err := Agglomerate(n, matrixDist(m))
		if err != nil {
			t.Fatal(err)
		}
		merges := d.Merges()
		if len(merges) != n-1 {
			t.Fatalf("trial %d: %d merges for n=%d", trial, len(merges), n)
		}
		for i := 1; i < len(merges); i++ {
			if merges[i].Weight < merges[i-1].Weight-1e-9 {
				t.Fatalf("trial %d: inversion at merge %d: %v < %v",
					trial, i, merges[i].Weight, merges[i-1].Weight)
			}
		}
	}
}

// Any cut yields a valid partition: every leaf appears exactly once.
func TestCutIsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(25)
		m := randomDistMatrix(rng, n)
		d, err := Agglomerate(n, matrixDist(m))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1, n / 2, n - 1} {
			clusters := d.Cut(k)
			seen := make(map[int]bool)
			for _, c := range clusters {
				for _, leaf := range c {
					if leaf < 0 || leaf >= n {
						t.Fatalf("leaf %d out of range", leaf)
					}
					if seen[leaf] {
						t.Fatalf("leaf %d appears twice in Cut(%d)", leaf, k)
					}
					seen[leaf] = true
				}
			}
			if len(seen) != n {
				t.Fatalf("Cut(%d) covers %d of %d leaves", k, len(seen), n)
			}
			// Cutting k links yields exactly k+1 clusters (monotone linkage).
			if len(clusters) != k+1 {
				t.Fatalf("Cut(%d) produced %d clusters, want %d", k, len(clusters), k+1)
			}
		}
	}
}

// The Lance–Williams update must agree with brute-force average linkage
// (recomputing cluster distances as mean pairwise leaf distance).
func TestLanceWilliamsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		m := randomDistMatrix(rng, n)
		d, err := Agglomerate(n, matrixDist(m))
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceUPGMA(m)
		got := d.Merges()
		for i := range want {
			if math.Abs(got[i].Weight-want[i]) > 1e-9 {
				t.Fatalf("trial %d: merge %d weight %v, brute force %v", trial, i, got[i].Weight, want[i])
			}
		}
	}
}

// bruteForceUPGMA returns the sequence of merge weights computed by
// explicitly averaging leaf-to-leaf distances between clusters.
func bruteForceUPGMA(m [][]float64) []float64 {
	n := len(m)
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	avg := func(a, b []int) float64 {
		var sum float64
		for _, x := range a {
			for _, y := range b {
				sum += m[x][y]
			}
		}
		return sum / float64(len(a)*len(b))
	}
	var weights []float64
	for len(clusters) > 1 {
		bi, bj := 0, 1
		best := math.Inf(1)
		for i := range clusters {
			for j := i + 1; j < len(clusters); j++ {
				if v := avg(clusters[i], clusters[j]); v < best {
					best = v
					bi, bj = i, j
				}
			}
		}
		weights = append(weights, best)
		merged := append(append([]int{}, clusters[bi]...), clusters[bj]...)
		next := make([][]int, 0, len(clusters)-1)
		for k := range clusters {
			if k != bi && k != bj {
				next = append(next, clusters[k])
			}
		}
		clusters = append(next, merged)
	}
	return weights
}

func TestDiameter(t *testing.T) {
	m := [][]float64{
		{0, 1, 4},
		{1, 0, 5},
		{4, 5, 0},
	}
	dist := matrixDist(m)
	if got := Diameter([]int{0, 1, 2}, dist); got != 5 {
		t.Errorf("Diameter = %v, want 5", got)
	}
	if got := Diameter([]int{0, 1}, dist); got != 1 {
		t.Errorf("Diameter = %v, want 1", got)
	}
	if got := Diameter([]int{2}, dist); got != 0 {
		t.Errorf("singleton Diameter = %v, want 0", got)
	}
	if got := Diameter(nil, dist); got != 0 {
		t.Errorf("empty Diameter = %v, want 0", got)
	}
}

func TestTiedDistancesDeterministic(t *testing.T) {
	// All pairwise distances equal: the dendrogram must still be valid
	// and deterministic across runs.
	dist := func(i, j int) float64 { return 1 }
	d1, err := Agglomerate(6, dist)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Agglomerate(6, dist)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1.Merges(), d2.Merges()) {
		t.Error("tied-distance dendrograms differ across runs")
	}
	for _, k := range []int{0, 2, 5} {
		if !reflect.DeepEqual(d1.Cut(k), d2.Cut(k)) {
			t.Errorf("Cut(%d) differs across runs", k)
		}
	}
}

func randomDistMatrix(rng *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64() * 100
			m[i][j] = v
			m[j][i] = v
		}
	}
	return m
}

func BenchmarkAgglomerate200(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	m := randomDistMatrix(rng, 200)
	dist := matrixDist(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Agglomerate(200, dist); err != nil {
			b.Fatal(err)
		}
	}
}

// With monotone (average-linkage) weights and ties broken toward later
// merges, the removed-link set of any cut is upward-closed: if a merge is
// removed, every merge above it (referencing its parent, directly or
// transitively) is removed too. This is what makes Cut(k) equivalent to
// undoing the last k merges.
func TestCutRemovedSetUpwardClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(20)
		m := randomDistMatrix(rng, n)
		d, err := Agglomerate(n, matrixDist(m))
		if err != nil {
			t.Fatal(err)
		}
		merges := d.Merges()
		for k := 1; k < n-1; k++ {
			clusters := d.Cut(k)
			// Reconstruct which merges were "kept" by checking whether
			// both children's leaf sets ended up in one cluster.
			leafSets := make(map[int]map[int]bool) // cluster id -> leaves
			for leaf := 0; leaf < n; leaf++ {
				leafSets[leaf] = map[int]bool{leaf: true}
			}
			inSameCluster := func(a, b map[int]bool) bool {
				for _, c := range clusters {
					members := make(map[int]bool, len(c))
					for _, leaf := range c {
						members[leaf] = true
					}
					okA, okB := true, true
					for leaf := range a {
						if !members[leaf] {
							okA = false
							break
						}
					}
					for leaf := range b {
						if !members[leaf] {
							okB = false
							break
						}
					}
					if okA && okB {
						return true
					}
				}
				return false
			}
			removedBelow := false
			for _, mg := range merges {
				a, b := leafSets[mg.A], leafSets[mg.B]
				union := make(map[int]bool, len(a)+len(b))
				for leaf := range a {
					union[leaf] = true
				}
				for leaf := range b {
					union[leaf] = true
				}
				leafSets[mg.Parent] = union
				kept := inSameCluster(a, b)
				if !kept {
					removedBelow = true
				} else if removedBelow {
					t.Fatalf("trial %d k=%d: kept merge above a removed one", trial, k)
				}
			}
		}
	}
}

// naiveClosestPairMerges reimplements the pre-cache Agglomerate selection
// (full upper-triangle rescan each step, strict < so ties break toward
// the smallest slot pair) as a reference for the nearest-neighbor cache.
func naiveClosestPairMerges(n int, m [][]float64) []Merge {
	mat := make([][]float64, n)
	for i := range mat {
		mat[i] = append([]float64(nil), m[i]...)
	}
	active := make([]bool, n)
	size := make([]int, n)
	slotID := make([]int, n)
	for i := 0; i < n; i++ {
		active[i], size[i], slotID[i] = true, 1, i
	}
	var merges []Merge
	for step := 0; step < n-1; step++ {
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if active[j] && mat[i][j] < best {
					best = mat[i][j]
					bi, bj = i, j
				}
			}
		}
		parent := n + step
		merges = append(merges, Merge{A: slotID[bi], B: slotID[bj], Parent: parent, Weight: best})
		ni, nj := float64(size[bi]), float64(size[bj])
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			upd := (ni*mat[bi][k] + nj*mat[bj][k]) / (ni + nj)
			mat[bi][k] = upd
			mat[k][bi] = upd
		}
		size[bi] += size[bj]
		slotID[bi] = parent
		active[bj] = false
	}
	return merges
}

// The nearest-neighbor cache must reproduce the naive full-rescan merge
// sequence exactly — same pairs, same order, same weights — including on
// tie-heavy matrices where distances repeat constantly.
func TestAgglomerateMatchesNaiveRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(40)
		var m [][]float64
		if trial%2 == 0 {
			m = randomDistMatrix(rng, n)
		} else {
			// Distances drawn from {0,1,2,3} force heavy ties, stressing
			// the tie-break bookkeeping.
			m = make([][]float64, n)
			for i := range m {
				m[i] = make([]float64, n)
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					v := float64(rng.Intn(4))
					m[i][j], m[j][i] = v, v
				}
			}
		}
		d, err := Agglomerate(n, matrixDist(m))
		if err != nil {
			t.Fatal(err)
		}
		want := naiveClosestPairMerges(n, m)
		if !reflect.DeepEqual(d.Merges(), want) {
			t.Fatalf("trial %d (n=%d): merge sequence diverged from naive rescan\n got: %+v\nwant: %+v",
				trial, n, d.Merges(), want)
		}
	}
}

func TestCutTopFractionTwoItems(t *testing.T) {
	d, err := Agglomerate(2, func(i, j int) float64 { return 3 })
	if err != nil {
		t.Fatal(err)
	}
	// One link: frac=0 keeps the pair together, any positive frac
	// removes ceil(frac·1) = 1 link and shatters it.
	if got := d.CutTopFraction(0); !reflect.DeepEqual(got, [][]int{{0, 1}}) {
		t.Errorf("frac=0: %v", got)
	}
	if got := d.CutTopFraction(0.01); !reflect.DeepEqual(got, [][]int{{0}, {1}}) {
		t.Errorf("frac=0.01: %v", got)
	}
	if got := d.CutTopFraction(1); !reflect.DeepEqual(got, [][]int{{0}, {1}}) {
		t.Errorf("frac=1: %v", got)
	}
}

func TestCutTopFractionAllEqualDistances(t *testing.T) {
	// All-equal distances: every merge weight is identical (average
	// linkage of constant distances is that constant), so cutting must
	// still produce valid partitions of the expected cardinality and stay
	// deterministic.
	n := 7
	d, err := Agglomerate(n, func(i, j int) float64 { return 2.5 })
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range d.Merges() {
		if m.Weight != 2.5 {
			t.Fatalf("merge weight %v, want 2.5", m.Weight)
		}
	}
	for _, tc := range []struct {
		frac float64
		want int
	}{{0, 1}, {0.5, 4}, {1, n}} { // ceil(0.5·6)=3 cuts → 4 clusters
		got := d.CutTopFraction(tc.frac)
		if len(got) != tc.want {
			t.Errorf("frac=%v: %d clusters, want %d (%v)", tc.frac, len(got), tc.want, got)
		}
		seen := map[int]bool{}
		for _, c := range got {
			for _, leaf := range c {
				if seen[leaf] {
					t.Fatalf("frac=%v: leaf %d duplicated", tc.frac, leaf)
				}
				seen[leaf] = true
			}
		}
		if len(seen) != n {
			t.Errorf("frac=%v: partition covers %d of %d leaves", tc.frac, len(seen), n)
		}
	}
}

func TestMeanPairwiseDegenerate(t *testing.T) {
	m := [][]float64{
		{0, 4, 6},
		{4, 0, 8},
		{6, 8, 0},
	}
	dist := matrixDist(m)
	if got := MeanPairwise([]int{0, 1}, dist); got != 4 {
		t.Errorf("pair MeanPairwise = %v, want 4", got)
	}
	if got := MeanPairwise([]int{0, 1, 2}, dist); got != 6 {
		t.Errorf("MeanPairwise = %v, want (4+6+8)/3 = 6", got)
	}
	if got := MeanPairwise([]int{1}, dist); got != 0 {
		t.Errorf("singleton MeanPairwise = %v, want 0", got)
	}
	if got := MeanPairwise(nil, dist); got != 0 {
		t.Errorf("empty MeanPairwise = %v, want 0", got)
	}
	// All-equal distances: mean equals the common value and matches the
	// diameter.
	eq := func(i, j int) float64 { return 1.5 }
	members := []int{0, 1, 2, 3}
	if got := MeanPairwise(members, eq); got != 1.5 {
		t.Errorf("all-equal MeanPairwise = %v, want 1.5", got)
	}
	if Diameter(members, eq) != MeanPairwise(members, eq) {
		t.Error("all-equal distances: mean and diameter must agree")
	}
	// Mean never exceeds the diameter.
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		rm := randomDistMatrix(rng, n)
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		mean, diam := MeanPairwise(members, matrixDist(rm)), Diameter(members, matrixDist(rm))
		if mean > diam+1e-12 {
			t.Fatalf("trial %d: mean %v > diameter %v", trial, mean, diam)
		}
	}
}
