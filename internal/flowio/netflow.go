package flowio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"plotters/internal/collector"
	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// NetFlowWriter packs records into valid NetFlow v5 export packets, up
// to 30 per packet, issuing exactly one underlying Write per packet.
// That single-write contract is the point: handed a net.Conn, every
// packet leaves as one datagram a real collector accepts — the bridge
// that lets synthesized traces replay over loopback as live exporter
// traffic. Handed a file, the result is a stream of concatenated
// packets, the self-framing "netflow" trace format NetFlowReader (and
// flowconvert) reads back.
//
// The format is lossy where v5 is: timestamps floor to the millisecond,
// SrcPkts/SrcBytes saturate at 2³²−1, and DstPkts/DstBytes/Payload are
// dropped (see collector.AppendV5). The header flow_sequence runs
// across the writer's lifetime, so a reading collector sees a
// gap-free exporter.
type NetFlowWriter struct {
	w     io.Writer
	batch []flow.Record
	pkt   []byte
	seq   uint32
}

// NewNetFlowWriter wraps w.
func NewNetFlowWriter(w io.Writer) *NetFlowWriter {
	return &NetFlowWriter{w: w, batch: make([]flow.Record, 0, collector.V5MaxRecords)}
}

// Write buffers one record, emitting a packet when a full one is ready.
func (nw *NetFlowWriter) Write(r *flow.Record) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("flowio: refusing to encode invalid record: %w", err)
	}
	nw.batch = append(nw.batch, *r)
	if len(nw.batch) == collector.V5MaxRecords {
		return nw.emit()
	}
	return nil
}

// Flush emits any partial packet. An empty trace writes nothing — a v5
// stream has no file header, only packets.
func (nw *NetFlowWriter) Flush() error {
	if len(nw.batch) == 0 {
		return nil
	}
	return nw.emit()
}

// emit encodes the batch as one packet and writes it in one call.
func (nw *NetFlowWriter) emit() error {
	pkt, err := collector.AppendV5(nw.pkt[:0], nw.batch, nw.seq)
	if err != nil {
		return fmt.Errorf("flowio: encoding netflow packet: %w", err)
	}
	nw.pkt = pkt
	if _, err := nw.w.Write(pkt); err != nil {
		return fmt.Errorf("flowio: writing netflow packet: %w", err)
	}
	nw.seq += uint32(len(nw.batch))
	nw.batch = nw.batch[:0]
	return nil
}

// NetFlowReader streams records from a concatenation of NetFlow v5
// packets (a NetFlowWriter trace file). The format is self-framing —
// each packet header declares its record count and therefore its length
// — so no extra container is needed. v9 packets are not accepted here;
// templates make v9 a session protocol, not a storage format.
type NetFlowReader struct {
	src     *countReader
	r       *bufio.Reader
	pkt     []byte
	pending []flow.Record
	idx     int
	packets int
	records *metrics.Counter
}

// NewNetFlowReader wraps r.
func NewNetFlowReader(r io.Reader) *NetFlowReader {
	src := &countReader{r: r}
	return &NetFlowReader{src: src, r: bufio.NewReaderSize(src, 1<<16)}
}

// Next returns the next record, or io.EOF at end of trace. A trace
// ending mid-packet is an error, not EOF.
func (nr *NetFlowReader) Next() (flow.Record, error) {
	for nr.idx == len(nr.pending) {
		if err := nr.readPacket(); err != nil {
			return flow.Record{}, err
		}
	}
	rec := nr.pending[nr.idx]
	nr.idx++
	nr.records.Add(1)
	return rec, nil
}

// readPacket decodes the next packet into the pending buffer. A packet
// may carry zero records (some exporters heartbeat); the caller loops.
func (nr *NetFlowReader) readPacket() error {
	var hdr [collector.V5HeaderSize]byte
	if _, err := io.ReadFull(nr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF // clean packet boundary
		}
		return fmt.Errorf("flowio: netflow trace truncated mid-header (packet %d): %w", nr.packets, err)
	}
	if v := binary.BigEndian.Uint16(hdr[:]); v != 5 {
		return fmt.Errorf("flowio: netflow trace packet %d has version %d, want 5", nr.packets, v)
	}
	count := int(binary.BigEndian.Uint16(hdr[2:]))
	need := collector.V5HeaderSize + count*collector.V5RecordSize
	if cap(nr.pkt) < need {
		nr.pkt = make([]byte, need)
	}
	nr.pkt = nr.pkt[:need]
	copy(nr.pkt, hdr[:])
	if _, err := io.ReadFull(nr.r, nr.pkt[collector.V5HeaderSize:]); err != nil {
		return fmt.Errorf("flowio: netflow trace truncated mid-packet (packet %d, %d records): %w", nr.packets, count, err)
	}
	var err error
	_, nr.pending, err = collector.DecodeV5(nr.pkt, nr.pending[:0])
	nr.idx = 0
	if err != nil {
		return fmt.Errorf("flowio: netflow trace packet %d: %w", nr.packets, err)
	}
	nr.packets++
	return nil
}

// ReadAllNetFlow decodes an entire netflow trace into memory.
func ReadAllNetFlow(r io.Reader) ([]flow.Record, error) {
	nr := NewNetFlowReader(r)
	var out []flow.Record
	for {
		rec, err := nr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// WriteAllNetFlow encodes records to w as v5 packets and flushes.
func WriteAllNetFlow(w io.Writer, records []flow.Record) error {
	nw := NewNetFlowWriter(w)
	for i := range records {
		if err := nw.Write(&records[i]); err != nil {
			return err
		}
	}
	return nw.Flush()
}
