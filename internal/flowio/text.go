package flowio

import (
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"plotters/internal/flow"
)

// csvHeader is the column order of the CSV codec. Payload is hex-encoded.
var csvHeader = []string{
	"src", "dst", "sport", "dport", "proto", "state",
	"start", "end", "spkts", "dpkts", "sbytes", "dbytes", "payload",
}

// timeLayout is the CSV timestamp format (RFC 3339 with nanoseconds).
const timeLayout = time.RFC3339Nano

// formatCSVRow fills row with one record's CSV fields.
func formatCSVRow(r *flow.Record, row []string) {
	row[0] = r.Src.String()
	row[1] = r.Dst.String()
	row[2] = strconv.FormatUint(uint64(r.SrcPort), 10)
	row[3] = strconv.FormatUint(uint64(r.DstPort), 10)
	row[4] = r.Proto.String()
	row[5] = r.State.String()
	row[6] = r.Start.UTC().Format(timeLayout)
	row[7] = r.End.UTC().Format(timeLayout)
	row[8] = strconv.FormatUint(uint64(r.SrcPkts), 10)
	row[9] = strconv.FormatUint(uint64(r.DstPkts), 10)
	row[10] = strconv.FormatUint(r.SrcBytes, 10)
	row[11] = strconv.FormatUint(r.DstBytes, 10)
	row[12] = hex.EncodeToString(r.Payload)
}

// WriteCSV encodes records as CSV with a header row.
func WriteCSV(w io.Writer, records []flow.Record) error {
	cw := NewCSVWriter(w)
	for i := range records {
		if err := cw.Write(&records[i]); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// ReadCSV decodes a CSV trace written by WriteCSV.
func ReadCSV(r io.Reader) ([]flow.Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("flowio: reading CSV header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("flowio: CSV column %d is %q, want %q", i, header[i], want)
		}
	}
	var out []flow.Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("flowio: reading CSV line %d: %w", line, err)
		}
		rec, err := parseCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("flowio: CSV line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

func parseCSVRow(row []string) (flow.Record, error) {
	var (
		r   flow.Record
		err error
	)
	if r.Src, err = flow.ParseIP(row[0]); err != nil {
		return r, err
	}
	if r.Dst, err = flow.ParseIP(row[1]); err != nil {
		return r, err
	}
	sport, err := strconv.ParseUint(row[2], 10, 16)
	if err != nil {
		return r, fmt.Errorf("bad sport %q: %w", row[2], err)
	}
	r.SrcPort = uint16(sport)
	dport, err := strconv.ParseUint(row[3], 10, 16)
	if err != nil {
		return r, fmt.Errorf("bad dport %q: %w", row[3], err)
	}
	r.DstPort = uint16(dport)
	if r.Proto, err = flow.ParseProto(row[4]); err != nil {
		return r, err
	}
	switch row[5] {
	case flow.StateEstablished.String():
		r.State = flow.StateEstablished
	case flow.StateFailed.String():
		r.State = flow.StateFailed
	default:
		return r, fmt.Errorf("bad state %q", row[5])
	}
	if r.Start, err = time.Parse(timeLayout, row[6]); err != nil {
		return r, fmt.Errorf("bad start time: %w", err)
	}
	if r.End, err = time.Parse(timeLayout, row[7]); err != nil {
		return r, fmt.Errorf("bad end time: %w", err)
	}
	spkts, err := strconv.ParseUint(row[8], 10, 32)
	if err != nil {
		return r, fmt.Errorf("bad spkts: %w", err)
	}
	r.SrcPkts = uint32(spkts)
	dpkts, err := strconv.ParseUint(row[9], 10, 32)
	if err != nil {
		return r, fmt.Errorf("bad dpkts: %w", err)
	}
	r.DstPkts = uint32(dpkts)
	if r.SrcBytes, err = strconv.ParseUint(row[10], 10, 64); err != nil {
		return r, fmt.Errorf("bad sbytes: %w", err)
	}
	if r.DstBytes, err = strconv.ParseUint(row[11], 10, 64); err != nil {
		return r, fmt.Errorf("bad dbytes: %w", err)
	}
	if row[12] != "" {
		if r.Payload, err = hex.DecodeString(row[12]); err != nil {
			return r, fmt.Errorf("bad payload hex: %w", err)
		}
	}
	if err := r.Validate(); err != nil {
		return r, err
	}
	return r, nil
}

// jsonRecord is the JSON Lines wire shape of a record.
type jsonRecord struct {
	Src      string `json:"src"`
	Dst      string `json:"dst"`
	SrcPort  uint16 `json:"sport"`
	DstPort  uint16 `json:"dport"`
	Proto    string `json:"proto"`
	State    string `json:"state"`
	Start    string `json:"start"`
	End      string `json:"end"`
	SrcPkts  uint32 `json:"spkts"`
	DstPkts  uint32 `json:"dpkts"`
	SrcBytes uint64 `json:"sbytes"`
	DstBytes uint64 `json:"dbytes"`
	Payload  string `json:"payload,omitempty"` // hex
}

// toJSONRecord converts a record to its wire shape.
func toJSONRecord(r *flow.Record) jsonRecord {
	return jsonRecord{
		Src: r.Src.String(), Dst: r.Dst.String(),
		SrcPort: r.SrcPort, DstPort: r.DstPort,
		Proto: r.Proto.String(), State: r.State.String(),
		Start: r.Start.UTC().Format(timeLayout), End: r.End.UTC().Format(timeLayout),
		SrcPkts: r.SrcPkts, DstPkts: r.DstPkts,
		SrcBytes: r.SrcBytes, DstBytes: r.DstBytes,
		Payload: hex.EncodeToString(r.Payload),
	}
}

// WriteJSONL encodes records as JSON Lines (one object per line).
func WriteJSONL(w io.Writer, records []flow.Record) error {
	jw := NewJSONLWriter(w)
	for i := range records {
		if err := jw.Write(&records[i]); err != nil {
			return err
		}
	}
	return jw.Flush()
}

// ReadJSONL decodes a JSON Lines trace written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]flow.Record, error) {
	dec := json.NewDecoder(r)
	var out []flow.Record
	for line := 1; ; line++ {
		var jr jsonRecord
		if err := dec.Decode(&jr); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("flowio: decoding JSONL record %d: %w", line, err)
		}
		rec, err := jr.toRecord()
		if err != nil {
			return nil, fmt.Errorf("flowio: JSONL record %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

func (jr *jsonRecord) toRecord() (flow.Record, error) {
	row := []string{
		jr.Src, jr.Dst,
		strconv.FormatUint(uint64(jr.SrcPort), 10), strconv.FormatUint(uint64(jr.DstPort), 10),
		jr.Proto, jr.State, jr.Start, jr.End,
		strconv.FormatUint(uint64(jr.SrcPkts), 10), strconv.FormatUint(uint64(jr.DstPkts), 10),
		strconv.FormatUint(jr.SrcBytes, 10), strconv.FormatUint(jr.DstBytes, 10),
		jr.Payload,
	}
	return parseCSVRow(row)
}
