// The "ipfix" and "sflow" trace formats: concatenated wire datagrams,
// exactly like "netflow" but over the other two export protocols the
// collector decodes. Both writers keep the one-Write-per-packet
// contract, so handing them a net.Conn replays a trace as live
// exporter datagrams, and both readers walk the native framing — the
// IPFIX message header declares its total length, and an sFlow
// datagram's length falls out of walking its sample headers — so no
// extra container wraps the stream.

package flowio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"plotters/internal/collector"
	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// exportBatch is the records-per-packet cap shared by the IPFIX and
// sFlow writers, matching the v5 packet cap so all three trace formats
// chunk a stream identically.
const exportBatch = collector.V5MaxRecords

// IPFIXWriter packs records into self-describing IPFIX messages
// (template set + data set, see collector.AppendIPFIX), up to 30 per
// message, one underlying Write per message. Unlike v5, the mapping
// keeps bidirectional counters and 64-bit byte counts; only
// sub-millisecond time is lost. The header sequence number carries
// IPFIX's cumulative-record semantics across the writer's lifetime.
type IPFIXWriter struct {
	w     io.Writer
	batch []flow.Record
	pkt   []byte
	seq   uint32
}

// NewIPFIXWriter wraps w.
func NewIPFIXWriter(w io.Writer) *IPFIXWriter {
	return &IPFIXWriter{w: w, batch: make([]flow.Record, 0, exportBatch)}
}

// Write buffers one record, emitting a message when a full one is
// ready.
func (iw *IPFIXWriter) Write(r *flow.Record) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("flowio: refusing to encode invalid record: %w", err)
	}
	iw.batch = append(iw.batch, *r)
	if len(iw.batch) == exportBatch {
		return iw.emit()
	}
	return nil
}

// Flush emits any partial message. An empty trace writes nothing.
func (iw *IPFIXWriter) Flush() error {
	if len(iw.batch) == 0 {
		return nil
	}
	return iw.emit()
}

func (iw *IPFIXWriter) emit() error {
	pkt, err := collector.AppendIPFIX(iw.pkt[:0], iw.batch, iw.seq)
	if err != nil {
		return fmt.Errorf("flowio: encoding IPFIX message: %w", err)
	}
	iw.pkt = pkt
	if _, err := iw.w.Write(pkt); err != nil {
		return fmt.Errorf("flowio: writing IPFIX message: %w", err)
	}
	iw.seq += uint32(len(iw.batch))
	iw.batch = iw.batch[:0]
	return nil
}

// IPFIXReader streams records from a concatenation of IPFIX messages.
// Messages self-frame via the header length field. Template state is
// kept across messages, so foreign traces that announce templates once
// up front decode too; data sets whose template never appears are
// skipped, mirroring collector behavior.
type IPFIXReader struct {
	src       *countReader
	r         *bufio.Reader
	pkt       []byte
	pending   []flow.Record
	idx       int
	packets   int
	templates *collector.TemplateCache
	records   *metrics.Counter
}

// NewIPFIXReader wraps r.
func NewIPFIXReader(r io.Reader) *IPFIXReader {
	src := &countReader{r: r}
	return &IPFIXReader{
		src:       src,
		r:         bufio.NewReaderSize(src, 1<<16),
		templates: collector.NewTemplateCache(),
	}
}

// Next returns the next record, or io.EOF at end of trace.
func (ir *IPFIXReader) Next() (flow.Record, error) {
	for ir.idx == len(ir.pending) {
		if err := ir.readMessage(); err != nil {
			return flow.Record{}, err
		}
	}
	rec := ir.pending[ir.idx]
	ir.idx++
	ir.records.Add(1)
	return rec, nil
}

func (ir *IPFIXReader) readMessage() error {
	var hdr [4]byte // version + length is all the framing needs
	if _, err := io.ReadFull(ir.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF // clean message boundary
		}
		return fmt.Errorf("flowio: IPFIX trace truncated mid-header (message %d): %w", ir.packets, err)
	}
	if v := binary.BigEndian.Uint16(hdr[:]); v != 10 {
		return fmt.Errorf("flowio: IPFIX trace message %d has version %d, want 10", ir.packets, v)
	}
	length := int(binary.BigEndian.Uint16(hdr[2:]))
	if length < 16 {
		return fmt.Errorf("flowio: IPFIX trace message %d declares %d bytes", ir.packets, length)
	}
	if cap(ir.pkt) < length {
		ir.pkt = make([]byte, length)
	}
	ir.pkt = ir.pkt[:length]
	copy(ir.pkt, hdr[:])
	if _, err := io.ReadFull(ir.r, ir.pkt[4:]); err != nil {
		return fmt.Errorf("flowio: IPFIX trace truncated mid-message (message %d, %d bytes): %w", ir.packets, length, err)
	}
	var err error
	_, ir.pending, _, err = ir.templates.DecodeIPFIX("trace", ir.pkt, ir.pending[:0])
	ir.idx = 0
	if err != nil {
		return fmt.Errorf("flowio: IPFIX trace message %d: %w", ir.packets, err)
	}
	ir.packets++
	return nil
}

// SFlowWriter packs records into sFlow v5 datagrams — one flow sample
// per record carrying the raw synthesized packet header plus the
// software-exporter extension (see collector.AppendSFlow) — up to 30
// per datagram, one underlying Write per datagram. The extension makes
// the trace lossless to the millisecond; a foreign sFlow collector
// ignores it and still reads the sampled headers.
type SFlowWriter struct {
	w     io.Writer
	batch []flow.Record
	pkt   []byte
	seq   uint32
}

// NewSFlowWriter wraps w.
func NewSFlowWriter(w io.Writer) *SFlowWriter {
	return &SFlowWriter{w: w, batch: make([]flow.Record, 0, exportBatch)}
}

// Write buffers one record, emitting a datagram when a full one is
// ready.
func (sw *SFlowWriter) Write(r *flow.Record) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("flowio: refusing to encode invalid record: %w", err)
	}
	sw.batch = append(sw.batch, *r)
	if len(sw.batch) == exportBatch {
		return sw.emit()
	}
	return nil
}

// Flush emits any partial datagram. An empty trace writes nothing.
func (sw *SFlowWriter) Flush() error {
	if len(sw.batch) == 0 {
		return nil
	}
	return sw.emit()
}

func (sw *SFlowWriter) emit() error {
	pkt, err := collector.AppendSFlow(sw.pkt[:0], sw.batch, sw.seq)
	if err != nil {
		return fmt.Errorf("flowio: encoding sFlow datagram: %w", err)
	}
	sw.pkt = pkt
	if _, err := sw.w.Write(pkt); err != nil {
		return fmt.Errorf("flowio: writing sFlow datagram: %w", err)
	}
	sw.seq++
	sw.batch = sw.batch[:0]
	return nil
}

// SFlowReader streams records from a concatenation of sFlow v5
// datagrams. sFlow has no datagram-length field, but the format is
// still self-framing one level down: the reader walks the fixed header
// and then each sample's (type, length) pair to reassemble exactly one
// datagram, which then decodes as if it had arrived on the socket.
// Records reconstructed from raw packet headers alone (no extension
// record) carry zero timestamps — the format has no clock to offer a
// file reader.
type SFlowReader struct {
	src     *countReader
	r       *bufio.Reader
	pkt     []byte
	pending []flow.Record
	idx     int
	packets int
	records *metrics.Counter
}

// NewSFlowReader wraps r.
func NewSFlowReader(r io.Reader) *SFlowReader {
	src := &countReader{r: r}
	return &SFlowReader{src: src, r: bufio.NewReaderSize(src, 1<<16)}
}

// Next returns the next record, or io.EOF at end of trace.
func (sr *SFlowReader) Next() (flow.Record, error) {
	for sr.idx == len(sr.pending) {
		if err := sr.readDatagram(); err != nil {
			return flow.Record{}, err
		}
	}
	rec := sr.pending[sr.idx]
	sr.idx++
	sr.records.Add(1)
	return rec, nil
}

// readDatagram reassembles one datagram by walking its native framing.
func (sr *SFlowReader) readDatagram() error {
	be := binary.BigEndian
	// Version + agent address type tell us the fixed header size.
	pkt, err := sr.frame(nil, 8)
	if errors.Is(err, io.EOF) && len(pkt) == 0 {
		return io.EOF // clean datagram boundary
	}
	if err != nil {
		return fmt.Errorf("flowio: sFlow trace truncated mid-header (datagram %d): %w", sr.packets, err)
	}
	if v := be.Uint32(pkt); v != 5 {
		return fmt.Errorf("flowio: sFlow trace datagram %d has version %d, want 5", sr.packets, v)
	}
	addrLen := 0
	switch be.Uint32(pkt[4:]) {
	case 1:
		addrLen = 4
	case 2:
		addrLen = 16
	default:
		return fmt.Errorf("flowio: sFlow trace datagram %d has agent address type %d", sr.packets, be.Uint32(pkt[4:]))
	}
	// Agent address + sub-agent, sequence, uptime, sample count.
	if pkt, err = sr.frame(pkt, addrLen+16); err != nil {
		return fmt.Errorf("flowio: sFlow trace truncated mid-header (datagram %d): %w", sr.packets, err)
	}
	nsamples := int(be.Uint32(pkt[len(pkt)-4:]))
	for s := 0; s < nsamples; s++ {
		if pkt, err = sr.frame(pkt, 8); err != nil {
			return fmt.Errorf("flowio: sFlow trace truncated at sample %d (datagram %d): %w", s, sr.packets, err)
		}
		sampleLen := int(be.Uint32(pkt[len(pkt)-4:]))
		if sampleLen < 0 || sampleLen > 1<<20 {
			return fmt.Errorf("flowio: sFlow trace datagram %d sample %d claims %d bytes", sr.packets, s, sampleLen)
		}
		if pkt, err = sr.frame(pkt, sampleLen); err != nil {
			return fmt.Errorf("flowio: sFlow trace truncated in sample %d (datagram %d): %w", s, sr.packets, err)
		}
	}
	sr.pkt = pkt

	_, sr.pending, _, err = collector.DecodeSFlow(pkt, time.Time{}, sr.pending[:0])
	sr.idx = 0
	if err != nil {
		return fmt.Errorf("flowio: sFlow trace datagram %d: %w", sr.packets, err)
	}
	sr.packets++
	return nil
}

// frame appends the next n bytes of the stream to pkt, reusing the
// reader's scratch buffer.
func (sr *SFlowReader) frame(pkt []byte, n int) ([]byte, error) {
	if pkt == nil {
		pkt = sr.pkt[:0]
	}
	off := len(pkt)
	if cap(pkt) < off+n {
		grown := make([]byte, off, max(off+n, 2*cap(pkt)))
		copy(grown, pkt)
		pkt = grown
	}
	pkt = pkt[:off+n]
	if _, err := io.ReadFull(sr.r, pkt[off:]); err != nil {
		sr.pkt = pkt[:off]
		return pkt[:off], err
	}
	return pkt, nil
}
