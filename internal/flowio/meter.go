package flowio

import (
	"io"

	"plotters/internal/metrics"
)

// countReader sits between a codec and its untrusted byte source,
// tallying bytes into a counter. Until Meter attaches a registry the
// counter is nil and Add is a no-op, so the unmetered read path costs
// one predictable branch per (buffered, typically 64 KiB) read.
type countReader struct {
	r     io.Reader
	bytes *metrics.Counter
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.bytes.Add(int64(n))
	return n, err
}

// Meter attaches reg's instruments to the reader: the
// "flowio/binary/records" counter (records decoded) and the
// "flowio/binary/bytes" counter (bytes consumed from the underlying
// source, including read-ahead buffering).
func (br *BinaryReader) Meter(reg *metrics.Registry) {
	br.records = reg.Counter("flowio/binary/records")
	br.src.bytes = reg.Counter("flowio/binary/bytes")
}

// Meter attaches reg's "flowio/csv/records" and "flowio/csv/bytes"
// counters to the reader.
func (c *CSVReader) Meter(reg *metrics.Registry) {
	c.records = reg.Counter("flowio/csv/records")
	c.src.bytes = reg.Counter("flowio/csv/bytes")
}

// Meter attaches reg's "flowio/jsonl/records" and "flowio/jsonl/bytes"
// counters to the reader.
func (j *JSONLReader) Meter(reg *metrics.Registry) {
	j.records = reg.Counter("flowio/jsonl/records")
	j.src.bytes = reg.Counter("flowio/jsonl/bytes")
}

// Meter attaches reg's "flowio/netflow/records" and
// "flowio/netflow/bytes" counters to the reader.
func (nr *NetFlowReader) Meter(reg *metrics.Registry) {
	nr.records = reg.Counter("flowio/netflow/records")
	nr.src.bytes = reg.Counter("flowio/netflow/bytes")
}

// Meter attaches reg's "flowio/ipfix/records" and "flowio/ipfix/bytes"
// counters to the reader.
func (ir *IPFIXReader) Meter(reg *metrics.Registry) {
	ir.records = reg.Counter("flowio/ipfix/records")
	ir.src.bytes = reg.Counter("flowio/ipfix/bytes")
}

// Meter attaches reg's "flowio/sflow/records" and "flowio/sflow/bytes"
// counters to the reader.
func (sr *SFlowReader) Meter(reg *metrics.Registry) {
	sr.records = reg.Counter("flowio/sflow/records")
	sr.src.bytes = reg.Counter("flowio/sflow/bytes")
}

// MeterReader attaches reg to r when r is one of this package's codec
// readers (a caller holding only the Reader interface can instrument
// without a type switch of its own). Unknown Reader implementations are
// left untouched. Returns r for chaining.
func MeterReader(r Reader, reg *metrics.Registry) Reader {
	switch tr := r.(type) {
	case *BinaryReader:
		tr.Meter(reg)
	case *CSVReader:
		tr.Meter(reg)
	case *JSONLReader:
		tr.Meter(reg)
	case *NetFlowReader:
		tr.Meter(reg)
	case *IPFIXReader:
		tr.Meter(reg)
	case *SFlowReader:
		tr.Meter(reg)
	}
	return r
}
