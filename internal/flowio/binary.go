// Package flowio reads and writes flow-record traces in four formats: a
// compact streaming binary format (the native trace format of this
// project's tools), CSV, JSON Lines, and NetFlow v5 packet streams (the
// wire format real exporters speak — see NetFlowWriter). All codecs
// stream — traces can be far larger than memory, as they would be at a
// real network border.
package flowio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// magic identifies the binary trace format, versioned in the last byte.
var magic = [4]byte{'P', 'F', 'L', '1'}

// ErrBadMagic is returned when a binary trace does not begin with the
// expected format marker.
var ErrBadMagic = errors.New("flowio: not a binary flow trace (bad magic)")

// binaryHeaderSize is the fixed-size portion of one encoded record:
// src(4) dst(4) sport(2) dport(2) proto(1) state(1) start(8) end(8)
// spkts(4) dpkts(4) sbytes(8) dbytes(8) payloadLen(1).
const binaryHeaderSize = 4 + 4 + 2 + 2 + 1 + 1 + 8 + 8 + 4 + 4 + 8 + 8 + 1

// BinaryWriter streams records to an io.Writer in binary form.
type BinaryWriter struct {
	w       *bufio.Writer
	started bool
	buf     [binaryHeaderSize + flow.MaxPayload]byte
}

// NewBinaryWriter wraps w. The format magic is emitted before the first
// record.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// AppendRecord encodes one record in the binary trace's record layout
// (fixed header + payload, no stream magic), appending to dst. This is
// the reusable single-record codec: the trace writer, the checkpoint
// WAL, and snapshot reorder-buffer serialization all share it so their
// byte layouts cannot drift.
func AppendRecord(dst []byte, r *flow.Record) []byte {
	var b [binaryHeaderSize]byte
	le := binary.LittleEndian
	le.PutUint32(b[0:], uint32(r.Src))
	le.PutUint32(b[4:], uint32(r.Dst))
	le.PutUint16(b[8:], r.SrcPort)
	le.PutUint16(b[10:], r.DstPort)
	b[12] = byte(r.Proto)
	b[13] = byte(r.State)
	le.PutUint64(b[14:], uint64(r.Start.UnixNano()))
	le.PutUint64(b[22:], uint64(r.End.UnixNano()))
	le.PutUint32(b[30:], r.SrcPkts)
	le.PutUint32(b[34:], r.DstPkts)
	le.PutUint64(b[38:], r.SrcBytes)
	le.PutUint64(b[46:], r.DstBytes)
	b[54] = byte(len(r.Payload))
	dst = append(dst, b[:]...)
	return append(dst, r.Payload...)
}

// DecodeRecord decodes one record produced by AppendRecord from the
// front of b, returning the bytes consumed.
func DecodeRecord(b []byte) (flow.Record, int, error) {
	if len(b) < binaryHeaderSize {
		return flow.Record{}, 0, fmt.Errorf("flowio: record truncated: %d of %d header bytes", len(b), binaryHeaderSize)
	}
	le := binary.LittleEndian
	r := flow.Record{
		Src:      flow.IP(le.Uint32(b[0:])),
		Dst:      flow.IP(le.Uint32(b[4:])),
		SrcPort:  le.Uint16(b[8:]),
		DstPort:  le.Uint16(b[10:]),
		Proto:    flow.Proto(b[12]),
		State:    flow.ConnState(b[13]),
		Start:    time.Unix(0, int64(le.Uint64(b[14:]))).UTC(),
		End:      time.Unix(0, int64(le.Uint64(b[22:]))).UTC(),
		SrcPkts:  le.Uint32(b[30:]),
		DstPkts:  le.Uint32(b[34:]),
		SrcBytes: le.Uint64(b[38:]),
		DstBytes: le.Uint64(b[46:]),
	}
	n := binaryHeaderSize
	if pl := int(b[54]); pl > 0 {
		if pl > flow.MaxPayload {
			return flow.Record{}, 0, fmt.Errorf("flowio: payload length %d exceeds cap", pl)
		}
		if len(b) < n+pl {
			return flow.Record{}, 0, fmt.Errorf("flowio: record truncated: %d of %d payload bytes", len(b)-n, pl)
		}
		r.Payload = append([]byte(nil), b[n:n+pl]...)
		n += pl
	}
	return r, n, nil
}

// Write appends one record.
func (bw *BinaryWriter) Write(r *flow.Record) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("flowio: refusing to encode invalid record: %w", err)
	}
	if !bw.started {
		if _, err := bw.w.Write(magic[:]); err != nil {
			return fmt.Errorf("flowio: writing magic: %w", err)
		}
		bw.started = true
	}
	if _, err := bw.w.Write(AppendRecord(bw.buf[:0], r)); err != nil {
		return fmt.Errorf("flowio: writing record: %w", err)
	}
	return nil
}

// Flush drains buffered output to the underlying writer.
func (bw *BinaryWriter) Flush() error {
	if !bw.started {
		// An empty trace still carries the magic so readers can identify it.
		if _, err := bw.w.Write(magic[:]); err != nil {
			return fmt.Errorf("flowio: writing magic: %w", err)
		}
		bw.started = true
	}
	if err := bw.w.Flush(); err != nil {
		return fmt.Errorf("flowio: flushing: %w", err)
	}
	return nil
}

// BinaryReader streams records from an io.Reader produced by
// BinaryWriter.
type BinaryReader struct {
	src     *countReader
	r       *bufio.Reader
	started bool
	records *metrics.Counter
	buf     [binaryHeaderSize]byte
}

// NewBinaryReader wraps r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	src := &countReader{r: r}
	return &BinaryReader{src: src, r: bufio.NewReaderSize(src, 1<<16)}
}

// Next returns the next record, or io.EOF at end of trace.
func (br *BinaryReader) Next() (flow.Record, error) {
	if !br.started {
		var got [4]byte
		if _, err := io.ReadFull(br.r, got[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return flow.Record{}, fmt.Errorf("flowio: trace truncated before magic: %w", ErrBadMagic)
			}
			return flow.Record{}, fmt.Errorf("flowio: reading magic: %w", err)
		}
		if got != magic {
			return flow.Record{}, ErrBadMagic
		}
		br.started = true
	}
	b := br.buf[:]
	if _, err := io.ReadFull(br.r, b); err != nil {
		if errors.Is(err, io.EOF) {
			return flow.Record{}, io.EOF
		}
		return flow.Record{}, fmt.Errorf("flowio: reading record: %w", err)
	}
	le := binary.LittleEndian
	r := flow.Record{
		Src:      flow.IP(le.Uint32(b[0:])),
		Dst:      flow.IP(le.Uint32(b[4:])),
		SrcPort:  le.Uint16(b[8:]),
		DstPort:  le.Uint16(b[10:]),
		Proto:    flow.Proto(b[12]),
		State:    flow.ConnState(b[13]),
		Start:    time.Unix(0, int64(le.Uint64(b[14:]))).UTC(),
		End:      time.Unix(0, int64(le.Uint64(b[22:]))).UTC(),
		SrcPkts:  le.Uint32(b[30:]),
		DstPkts:  le.Uint32(b[34:]),
		SrcBytes: le.Uint64(b[38:]),
		DstBytes: le.Uint64(b[46:]),
	}
	if n := int(b[54]); n > 0 {
		if n > flow.MaxPayload {
			return flow.Record{}, fmt.Errorf("flowio: payload length %d exceeds cap", n)
		}
		r.Payload = make([]byte, n)
		if _, err := io.ReadFull(br.r, r.Payload); err != nil {
			return flow.Record{}, fmt.Errorf("flowio: reading payload: %w", err)
		}
	}
	br.records.Add(1)
	return r, nil
}

// ReadAllBinary decodes an entire binary trace into memory.
func ReadAllBinary(r io.Reader) ([]flow.Record, error) {
	br := NewBinaryReader(r)
	var out []flow.Record
	for {
		rec, err := br.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// WriteAllBinary encodes records to w and flushes.
func WriteAllBinary(w io.Writer, records []flow.Record) error {
	bw := NewBinaryWriter(w)
	for i := range records {
		if err := bw.Write(&records[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
