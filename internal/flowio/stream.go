package flowio

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// Reader is the streaming decode interface implemented by all three
// codecs: Next returns records one at a time until io.EOF.
type Reader interface {
	Next() (flow.Record, error)
}

// Writer is the streaming encode interface implemented by all three
// codecs.
type Writer interface {
	Write(r *flow.Record) error
	Flush() error
}

// Compile-time interface checks.
var (
	_ Reader = (*BinaryReader)(nil)
	_ Reader = (*CSVReader)(nil)
	_ Reader = (*JSONLReader)(nil)
	_ Reader = (*NetFlowReader)(nil)
	_ Reader = (*IPFIXReader)(nil)
	_ Reader = (*SFlowReader)(nil)
	_ Writer = (*BinaryWriter)(nil)
	_ Writer = (*CSVWriter)(nil)
	_ Writer = (*JSONLWriter)(nil)
	_ Writer = (*NetFlowWriter)(nil)
	_ Writer = (*IPFIXWriter)(nil)
	_ Writer = (*SFlowWriter)(nil)
)

// CSVReader streams records from CSV.
type CSVReader struct {
	src     *countReader
	cr      *csv.Reader
	header  bool
	line    int
	records *metrics.Counter
}

// NewCSVReader wraps r.
func NewCSVReader(r io.Reader) *CSVReader {
	src := &countReader{r: r}
	cr := csv.NewReader(src)
	cr.FieldsPerRecord = len(csvHeader)
	return &CSVReader{src: src, cr: cr}
}

// Next returns the next record, or io.EOF at end of input.
func (c *CSVReader) Next() (flow.Record, error) {
	if !c.header {
		header, err := c.cr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return flow.Record{}, fmt.Errorf("flowio: empty CSV input: %w", err)
			}
			return flow.Record{}, fmt.Errorf("flowio: reading CSV header: %w", err)
		}
		for i, want := range csvHeader {
			if header[i] != want {
				return flow.Record{}, fmt.Errorf("flowio: CSV column %d is %q, want %q", i, header[i], want)
			}
		}
		c.header = true
		c.line = 1
	}
	c.line++
	row, err := c.cr.Read()
	if errors.Is(err, io.EOF) {
		return flow.Record{}, io.EOF
	}
	if err != nil {
		return flow.Record{}, fmt.Errorf("flowio: reading CSV line %d: %w", c.line, err)
	}
	rec, err := parseCSVRow(row)
	if err != nil {
		return flow.Record{}, fmt.Errorf("flowio: CSV line %d: %w", c.line, err)
	}
	c.records.Add(1)
	return rec, nil
}

// CSVWriter streams records to CSV.
type CSVWriter struct {
	cw     *csv.Writer
	header bool
	row    []string
}

// NewCSVWriter wraps w.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{cw: csv.NewWriter(w), row: make([]string, len(csvHeader))}
}

// Write appends one record.
func (c *CSVWriter) Write(r *flow.Record) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("flowio: refusing to encode invalid record: %w", err)
	}
	if !c.header {
		if err := c.cw.Write(csvHeader); err != nil {
			return fmt.Errorf("flowio: writing CSV header: %w", err)
		}
		c.header = true
	}
	formatCSVRow(r, c.row)
	if err := c.cw.Write(c.row); err != nil {
		return fmt.Errorf("flowio: writing CSV row: %w", err)
	}
	return nil
}

// Flush drains buffered output.
func (c *CSVWriter) Flush() error {
	if !c.header {
		if err := c.cw.Write(csvHeader); err != nil {
			return fmt.Errorf("flowio: writing CSV header: %w", err)
		}
		c.header = true
	}
	c.cw.Flush()
	if err := c.cw.Error(); err != nil {
		return fmt.Errorf("flowio: flushing CSV: %w", err)
	}
	return nil
}

// JSONLReader streams records from JSON Lines.
type JSONLReader struct {
	src     *countReader
	dec     *json.Decoder
	line    int
	records *metrics.Counter
}

// NewJSONLReader wraps r.
func NewJSONLReader(r io.Reader) *JSONLReader {
	src := &countReader{r: r}
	return &JSONLReader{src: src, dec: json.NewDecoder(src)}
}

// Next returns the next record, or io.EOF at end of input.
func (j *JSONLReader) Next() (flow.Record, error) {
	j.line++
	var jr jsonRecord
	if err := j.dec.Decode(&jr); err != nil {
		if errors.Is(err, io.EOF) {
			return flow.Record{}, io.EOF
		}
		return flow.Record{}, fmt.Errorf("flowio: decoding JSONL record %d: %w", j.line, err)
	}
	rec, err := jr.toRecord()
	if err != nil {
		return flow.Record{}, fmt.Errorf("flowio: JSONL record %d: %w", j.line, err)
	}
	j.records.Add(1)
	return rec, nil
}

// JSONLWriter streams records to JSON Lines.
type JSONLWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record.
func (j *JSONLWriter) Write(r *flow.Record) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("flowio: refusing to encode invalid record: %w", err)
	}
	jr := toJSONRecord(r)
	if err := j.enc.Encode(&jr); err != nil {
		return fmt.Errorf("flowio: encoding JSONL: %w", err)
	}
	return nil
}

// Flush drains buffered output.
func (j *JSONLWriter) Flush() error {
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("flowio: flushing JSONL: %w", err)
	}
	return nil
}

// Copy streams every record from r to w and flushes, returning the
// record count — format conversion without buffering the trace.
func Copy(w Writer, r Reader) (int, error) {
	n := 0
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return n, w.Flush()
		}
		if err != nil {
			return n, err
		}
		if err := w.Write(&rec); err != nil {
			return n, err
		}
		n++
	}
}
