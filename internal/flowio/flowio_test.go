package flowio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"plotters/internal/flow"
)

func sampleRecords() []flow.Record {
	t0 := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	return []flow.Record{
		{
			Src: flow.MakeIP(128, 2, 0, 1), Dst: flow.MakeIP(66, 35, 250, 150),
			SrcPort: 51234, DstPort: 80, Proto: flow.TCP,
			Start: t0, End: t0.Add(2 * time.Second),
			SrcPkts: 5, DstPkts: 7, SrcBytes: 840, DstBytes: 12000,
			State: flow.StateEstablished, Payload: []byte("GET /index.html HTTP/1.1\r\n"),
		},
		{
			Src: flow.MakeIP(128, 2, 7, 9), Dst: flow.MakeIP(87, 4, 11, 2),
			SrcPort: 6346, DstPort: 6346, Proto: flow.UDP,
			Start: t0.Add(time.Minute), End: t0.Add(time.Minute + 300*time.Millisecond),
			SrcPkts: 1, DstPkts: 0, SrcBytes: 60, DstBytes: 0,
			State: flow.StateFailed,
		},
		{
			Src: flow.MakeIP(128, 2, 200, 3), Dst: flow.MakeIP(201, 7, 8, 9),
			SrcPort: 4662, DstPort: 4662, Proto: flow.TCP,
			Start: t0.Add(2 * time.Minute), End: t0.Add(10 * time.Minute),
			SrcPkts: 900, DstPkts: 1200, SrcBytes: 4_000_000, DstBytes: 90_000,
			State: flow.StateEstablished, Payload: []byte{0xe3, 0x01, 0x00, 0x00},
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	records := sampleRecords()
	var buf bytes.Buffer
	if err := WriteAllBinary(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Errorf("round trip mismatch:\ngot  %v\nwant %v", got, records)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAllBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 4 {
		t.Errorf("empty trace length = %d, want 4 (magic only)", buf.Len())
	}
	got, err := ReadAllBinary(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("ReadAllBinary(empty) = %v, %v", got, err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	_, err := ReadAllBinary(strings.NewReader("XXXXjunk"))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	_, err = ReadAllBinary(strings.NewReader("PF"))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("truncated magic err = %v, want ErrBadMagic", err)
	}
}

func TestBinaryTruncatedRecord(t *testing.T) {
	records := sampleRecords()
	var buf bytes.Buffer
	if err := WriteAllBinary(&buf, records); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	_, err := ReadAllBinary(bytes.NewReader(trunc))
	if err == nil {
		t.Error("truncated trace should fail to decode")
	}
}

func TestBinaryRejectsInvalidRecord(t *testing.T) {
	bad := sampleRecords()[0]
	bad.End = bad.Start.Add(-time.Hour)
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if err := bw.Write(&bad); err == nil {
		t.Error("invalid record accepted by binary writer")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	records := sampleRecords()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Errorf("CSV round trip mismatch:\ngot  %v\nwant %v", got, records)
	}
}

func TestCSVHeaderValidation(t *testing.T) {
	in := "a,b,c,d,e,f,g,h,i,j,k,l,m\n"
	if _, err := ReadCSV(strings.NewReader(in)); err == nil {
		t.Error("wrong header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCSVBadFieldErrors(t *testing.T) {
	records := sampleRecords()[:1]
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")

	corrupt := func(col int, val string) string {
		fields := strings.Split(lines[1], ",")
		fields[col] = val
		return lines[0] + "\n" + strings.Join(fields, ",") + "\n"
	}
	tests := []struct {
		name string
		col  int
		val  string
	}{
		{"bad src", 0, "999.1.1.1"},
		{"bad dst", 1, "x"},
		{"bad sport", 2, "70000"},
		{"bad dport", 3, "-1"},
		{"bad proto", 4, "gre"},
		{"bad state", 5, "weird"},
		{"bad start", 6, "yesterday"},
		{"bad end", 7, "tomorrow"},
		{"bad spkts", 8, "x"},
		{"bad dpkts", 9, "x"},
		{"bad sbytes", 10, "x"},
		{"bad dbytes", 11, "x"},
		{"bad payload", 12, "zz"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(corrupt(tt.col, tt.val))); err == nil {
				t.Error("corrupt field accepted")
			}
		})
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	records := sampleRecords()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, records); err != nil {
		t.Fatal(err)
	}
	encoded := buf.String()
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Errorf("JSONL round trip mismatch:\ngot  %v\nwant %v", got, records)
	}
	// One object per line.
	lines := strings.Count(encoded, "\n")
	if lines != len(records) {
		t.Errorf("JSONL lines = %d, want %d", lines, len(records))
	}
}

func TestJSONLEmpty(t *testing.T) {
	got, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("ReadJSONL(empty) = %v, %v", got, err)
	}
}

func TestJSONLMalformed(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"src":"bogus"}` + "\n")); err == nil {
		t.Error("bad record accepted")
	}
}

// randomRecord builds a valid record from quick-generated primitives.
func randomRecord(rng *rand.Rand) flow.Record {
	t0 := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC).
		Add(time.Duration(rng.Int63n(int64(24 * time.Hour))))
	protos := []flow.Proto{flow.TCP, flow.UDP, flow.ICMP}
	states := []flow.ConnState{flow.StateEstablished, flow.StateFailed}
	var payload []byte
	if n := rng.Intn(flow.MaxPayload + 1); n > 0 {
		payload = make([]byte, n)
		rng.Read(payload)
	}
	return flow.Record{
		Src: flow.IP(rng.Uint32()), Dst: flow.IP(rng.Uint32()),
		SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()),
		Proto: protos[rng.Intn(len(protos))],
		Start: t0, End: t0.Add(time.Duration(rng.Int63n(int64(time.Hour)))),
		SrcPkts: rng.Uint32(), DstPkts: rng.Uint32(),
		SrcBytes: rng.Uint64() % (1 << 40), DstBytes: rng.Uint64() % (1 << 40),
		State:   states[rng.Intn(len(states))],
		Payload: payload,
	}
}

// Property: every codec round-trips arbitrary valid records.
func TestAllCodecsRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		records := make([]flow.Record, int(n)%20)
		for i := range records {
			records[i] = randomRecord(rng)
		}
		var bin, csvBuf, jsonBuf bytes.Buffer
		if err := WriteAllBinary(&bin, records); err != nil {
			return false
		}
		if err := WriteCSV(&csvBuf, records); err != nil {
			return false
		}
		if err := WriteJSONL(&jsonBuf, records); err != nil {
			return false
		}
		b, err := ReadAllBinary(&bin)
		if err != nil || !recordsEqual(b, records) {
			return false
		}
		c, err := ReadCSV(&csvBuf)
		if err != nil || !recordsEqual(c, records) {
			return false
		}
		j, err := ReadJSONL(&jsonBuf)
		if err != nil || !recordsEqual(j, records) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func recordsEqual(a, b []flow.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if len(x.Payload) == 0 && len(y.Payload) == 0 {
			x.Payload, y.Payload = nil, nil
		}
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	return true
}

func TestBinaryReaderStreaming(t *testing.T) {
	records := sampleRecords()
	var buf bytes.Buffer
	if err := WriteAllBinary(&buf, records); err != nil {
		t.Fatal(err)
	}
	br := NewBinaryReader(&buf)
	for i := range records {
		rec, err := br.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Src != records[i].Src {
			t.Errorf("record %d src = %v", i, rec.Src)
		}
	}
	if _, err := br.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("after last record err = %v, want EOF", err)
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	records := sampleRecords()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bw := NewBinaryWriter(io.Discard)
		for j := range records {
			if err := bw.Write(&records[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	var buf bytes.Buffer
	records := sampleRecords()
	for i := 0; i < 1000; i++ {
		for j := range records {
			rec := records[j]
			if err := (&rec).Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := WriteAllBinary(&buf, records); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadAllBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStreamingReadersMatchBatch(t *testing.T) {
	records := sampleRecords()
	var csvBuf, jsonBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, records); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jsonBuf, records); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		r    Reader
	}{
		{"csv", NewCSVReader(bytes.NewReader(csvBuf.Bytes()))},
		{"jsonl", NewJSONLReader(bytes.NewReader(jsonBuf.Bytes()))},
	} {
		var got []flow.Record
		for {
			rec, err := tc.r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			got = append(got, rec)
		}
		if !recordsEqual(got, records) {
			t.Errorf("%s: streaming read differs from batch", tc.name)
		}
	}
}

func TestCopyConvertsFormats(t *testing.T) {
	records := sampleRecords()
	var bin bytes.Buffer
	if err := WriteAllBinary(&bin, records); err != nil {
		t.Fatal(err)
	}
	// binary -> CSV -> JSONL -> binary round trip via streaming Copy.
	var csvBuf bytes.Buffer
	n, err := Copy(NewCSVWriter(&csvBuf), NewBinaryReader(bytes.NewReader(bin.Bytes())))
	if err != nil || n != len(records) {
		t.Fatalf("binary->csv: n=%d err=%v", n, err)
	}
	var jsonBuf bytes.Buffer
	if _, err := Copy(NewJSONLWriter(&jsonBuf), NewCSVReader(bytes.NewReader(csvBuf.Bytes()))); err != nil {
		t.Fatal(err)
	}
	var bin2 bytes.Buffer
	if _, err := Copy(NewBinaryWriter(&bin2), NewJSONLReader(bytes.NewReader(jsonBuf.Bytes()))); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllBinary(bytes.NewReader(bin2.Bytes()))
	if err != nil || !recordsEqual(got, records) {
		t.Errorf("round-the-world conversion lost data: %v", err)
	}
}

func TestCSVWriterEmptyFlushWritesHeader(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCSVWriter(&buf)
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadCSV(bytes.NewReader(buf.Bytes())); err != nil || len(got) != 0 {
		t.Errorf("empty CSV trace: %v, %v", got, err)
	}
}

func TestCSVReaderEmptyInput(t *testing.T) {
	if _, err := NewCSVReader(strings.NewReader("")).Next(); err == nil || errors.Is(err, io.EOF) && false {
		if err == nil {
			t.Error("empty CSV accepted")
		}
	}
}

// netflowSample returns records inside the v5 wire format's carrying
// capacity: millisecond-aligned times, initiator-side counters only, no
// payload. What NetFlow cannot carry is exercised separately in
// TestNetFlowLossyFields.
func netflowSample() []flow.Record {
	records := sampleRecords()
	for i := range records {
		records[i].DstPkts = 0
		records[i].DstBytes = 0
		records[i].Payload = nil
	}
	return records
}

func TestNetFlowRoundTrip(t *testing.T) {
	// 70 records spread over >2 packets.
	base := netflowSample()
	var records []flow.Record
	for i := 0; len(records) < 70; i++ {
		r := base[i%len(base)]
		r.Start = r.Start.Add(time.Duration(i) * time.Second)
		r.End = r.End.Add(time.Duration(i) * time.Second)
		records = append(records, r)
	}
	var buf bytes.Buffer
	if err := WriteAllNetFlow(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllNetFlow(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Errorf("round trip mismatch:\ngot  %v\nwant %v", got, records)
	}
}

// NetFlow v5 is deliberately lossy: times floor to the millisecond,
// responder counters and payload vanish. The rest survives.
func TestNetFlowLossyFields(t *testing.T) {
	records := sampleRecords()
	records[0].Start = records[0].Start.Add(123 * time.Microsecond)
	var buf bytes.Buffer
	if err := WriteAllNetFlow(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllNetFlow(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := netflowSample()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("lossy decode mismatch:\ngot  %v\nwant %v", got, want)
	}
}

func TestNetFlowEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAllNetFlow(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty netflow trace = %d bytes, want 0 (no file header, only packets)", buf.Len())
	}
	got, err := ReadAllNetFlow(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("ReadAllNetFlow(empty) = %v, %v", got, err)
	}
}

func TestNetFlowTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAllNetFlow(&buf, netflowSample()); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{buf.Len() - 3, 10} { // mid-record, mid-header
		_, err := ReadAllNetFlow(bytes.NewReader(buf.Bytes()[:cut]))
		if err == nil || errors.Is(err, io.EOF) {
			t.Errorf("trace cut at %d decoded cleanly (err = %v)", cut, err)
		}
	}
	// Cut at a packet boundary: clean EOF, shorter trace.
	got, err := ReadAllNetFlow(bytes.NewReader(buf.Bytes()[:0]))
	if err != nil || len(got) != 0 {
		t.Errorf("boundary cut: %v, %v", got, err)
	}
}

// countingWriter counts Write calls — the one-datagram-per-packet
// contract a UDP conn depends on.
type countingWriter struct {
	writes int
	bytes.Buffer
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	cw.writes++
	return cw.Buffer.Write(p)
}

func TestNetFlowOneWritePerPacket(t *testing.T) {
	base := netflowSample()[0]
	var cw countingWriter
	nw := NewNetFlowWriter(&cw)
	for i := 0; i < 35; i++ { // one full packet + one partial
		r := base
		r.Start = r.Start.Add(time.Duration(i) * time.Second)
		r.End = r.End.Add(time.Duration(i) * time.Second)
		if err := nw.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if cw.writes != 1 {
		t.Errorf("writes before Flush = %d, want 1 (the full packet)", cw.writes)
	}
	if err := nw.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 2 {
		t.Errorf("writes after Flush = %d, want 2", cw.writes)
	}
	got, err := ReadAllNetFlow(bytes.NewReader(cw.Buffer.Bytes()))
	if err != nil || len(got) != 35 {
		t.Errorf("read back %d records, err %v", len(got), err)
	}
}

func TestNetFlowRejectsInvalidRecord(t *testing.T) {
	bad := netflowSample()[0]
	bad.End = bad.Start.Add(-time.Hour)
	nw := NewNetFlowWriter(&bytes.Buffer{})
	if err := nw.Write(&bad); err == nil {
		t.Error("invalid record accepted by netflow writer")
	}
}

func TestNetFlowCopyConvertsFormats(t *testing.T) {
	records := netflowSample()
	var bin bytes.Buffer
	if err := WriteAllBinary(&bin, records); err != nil {
		t.Fatal(err)
	}
	var nf bytes.Buffer
	if _, err := Copy(NewNetFlowWriter(&nf), NewBinaryReader(bytes.NewReader(bin.Bytes()))); err != nil {
		t.Fatal(err)
	}
	var bin2 bytes.Buffer
	if _, err := Copy(NewBinaryWriter(&bin2), NewNetFlowReader(bytes.NewReader(nf.Bytes()))); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllBinary(bytes.NewReader(bin2.Bytes()))
	if err != nil || !recordsEqual(got, records) {
		t.Errorf("binary→netflow→binary conversion lost data: %v", err)
	}
}
