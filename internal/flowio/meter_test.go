package flowio

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// drain reads r to EOF, returning the decoded records.
func drain(t *testing.T, r Reader) []flow.Record {
	t.Helper()
	var out []flow.Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

// Every metered reader must report the records it decoded and the bytes
// it consumed from the source.
func TestMeteredReaders(t *testing.T) {
	records := sampleRecords()
	for _, tc := range []struct {
		format string
		encode func(io.Writer) Writer
		decode func(io.Reader) Reader
	}{
		{"binary", func(w io.Writer) Writer { return NewBinaryWriter(w) }, func(r io.Reader) Reader { return NewBinaryReader(r) }},
		{"csv", func(w io.Writer) Writer { return NewCSVWriter(w) }, func(r io.Reader) Reader { return NewCSVReader(r) }},
		{"jsonl", func(w io.Writer) Writer { return NewJSONLWriter(w) }, func(r io.Reader) Reader { return NewJSONLReader(r) }},
		{"netflow", func(w io.Writer) Writer { return NewNetFlowWriter(w) }, func(r io.Reader) Reader { return NewNetFlowReader(r) }},
	} {
		t.Run(tc.format, func(t *testing.T) {
			if tc.format == "netflow" {
				records = netflowSample() // inside v5 carrying capacity
			}
			var buf bytes.Buffer
			w := tc.encode(&buf)
			for i := range records {
				if err := w.Write(&records[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			encoded := buf.Len()

			reg := metrics.New()
			got := drain(t, MeterReader(tc.decode(&buf), reg))
			if len(got) != len(records) {
				t.Fatalf("decoded %d records, want %d", len(got), len(records))
			}

			snap := reg.TakeSnapshot()
			if n := snap.Counters["flowio/"+tc.format+"/records"]; n != int64(len(records)) {
				t.Errorf("records counter = %d, want %d", n, len(records))
			}
			// The codec's read-ahead buffer may stop at EOF without an
			// extra empty read, but every encoded byte must be tallied.
			if n := snap.Counters["flowio/"+tc.format+"/bytes"]; n != int64(encoded) {
				t.Errorf("bytes counter = %d, want %d (encoded size)", n, encoded)
			}
		})
	}
}

// An unmetered reader (nil counters) must behave identically.
func TestUnmeteredReaderUnchanged(t *testing.T) {
	records := sampleRecords()
	var buf bytes.Buffer
	if err := WriteAllBinary(&buf, records); err != nil {
		t.Fatal(err)
	}
	got := drain(t, NewBinaryReader(bytes.NewReader(buf.Bytes())))
	if !reflect.DeepEqual(got, records) {
		t.Errorf("unmetered decode mismatch:\ngot  %v\nwant %v", got, records)
	}
}

// MeterReader must leave foreign Reader implementations untouched.
func TestMeterReaderUnknownType(t *testing.T) {
	fake := fakeReader{}
	if got := MeterReader(fake, metrics.New()); got != Reader(fake) {
		t.Errorf("MeterReader rewrote an unknown reader: %v", got)
	}
}

type fakeReader struct{}

func (fakeReader) Next() (flow.Record, error) { return flow.Record{}, io.EOF }
