package flowio

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"plotters/internal/flow"
)

// exportSample returns records inside the IPFIX/sFlow trace formats'
// carrying capacity: both keep bidirectional counters and millisecond
// times (unlike v5) but neither carries payload.
func exportSample() []flow.Record {
	records := sampleRecords()
	for i := range records {
		records[i].Payload = nil
	}
	return records
}

// spreadRecords clones base out to n records with shifted times, enough
// to cross the 30-records-per-packet boundary a few times.
func spreadRecords(base []flow.Record, n int) []flow.Record {
	var records []flow.Record
	for i := 0; len(records) < n; i++ {
		r := base[i%len(base)]
		r.Start = r.Start.Add(time.Duration(i) * time.Second)
		r.End = r.End.Add(time.Duration(i) * time.Second)
		records = append(records, r)
	}
	return records
}

// readAll drains a Reader — the ReadAll* convenience wrappers only
// exist for the older formats.
func readAll(r Reader) ([]flow.Record, error) {
	var records []flow.Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return records, nil
		}
		if err != nil {
			return records, err
		}
		records = append(records, rec)
	}
}

func TestIPFIXTraceRoundTrip(t *testing.T) {
	records := spreadRecords(exportSample(), 70)
	var buf bytes.Buffer
	w := NewIPFIXWriter(&buf)
	for i := range records {
		if err := w.Write(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(NewIPFIXReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Errorf("round trip mismatch:\ngot  %v\nwant %v", got, records)
	}
}

func TestSFlowTraceRoundTrip(t *testing.T) {
	records := spreadRecords(exportSample(), 70)
	var buf bytes.Buffer
	w := NewSFlowWriter(&buf)
	for i := range records {
		if err := w.Write(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(NewSFlowReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Errorf("round trip mismatch:\ngot  %v\nwant %v", got, records)
	}
}

// Both export formats drop payload and keep everything else, including
// the responder-side counters v5 loses.
func TestExportTraceLossyFields(t *testing.T) {
	records := sampleRecords()
	records[0].Start = records[0].Start.Add(123 * time.Microsecond)
	want := exportSample()
	for _, tc := range []struct {
		name string
		w    func(io.Writer) Writer
		r    func(io.Reader) Reader
	}{
		{"ipfix", func(w io.Writer) Writer { return NewIPFIXWriter(w) }, func(r io.Reader) Reader { return NewIPFIXReader(r) }},
		{"sflow", func(w io.Writer) Writer { return NewSFlowWriter(w) }, func(r io.Reader) Reader { return NewSFlowReader(r) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			w := tc.w(&buf)
			for i := range records {
				if err := w.Write(&records[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			got, err := readAll(tc.r(bytes.NewReader(buf.Bytes())))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("lossy decode mismatch:\ngot  %v\nwant %v", got, want)
			}
		})
	}
}

func TestExportTraceEmpty(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    Writer
		r    func(io.Reader) Reader
	}{
		{"ipfix", NewIPFIXWriter(&bytes.Buffer{}), func(r io.Reader) Reader { return NewIPFIXReader(r) }},
		{"sflow", NewSFlowWriter(&bytes.Buffer{}), func(r io.Reader) Reader { return NewSFlowReader(r) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.w.Flush(); err != nil {
				t.Fatal(err)
			}
			got, err := readAll(tc.r(bytes.NewReader(nil)))
			if err != nil || len(got) != 0 {
				t.Errorf("empty trace = %v, %v", got, err)
			}
		})
	}
}

func TestIPFIXTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewIPFIXWriter(&buf)
	records := exportSample()
	for i := range records {
		if err := w.Write(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{buf.Len() - 3, 10, 2} { // mid-message, mid-body, mid-header
		_, err := readAll(NewIPFIXReader(bytes.NewReader(buf.Bytes()[:cut])))
		if err == nil || errors.Is(err, io.EOF) {
			t.Errorf("trace cut at %d decoded cleanly (err = %v)", cut, err)
		}
	}
}

func TestSFlowTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewSFlowWriter(&buf)
	records := exportSample()
	for i := range records {
		if err := w.Write(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{buf.Len() - 3, 40, 3} { // mid-sample, mid-header-tail, mid-version
		_, err := readAll(NewSFlowReader(bytes.NewReader(buf.Bytes()[:cut])))
		if err == nil || errors.Is(err, io.EOF) {
			t.Errorf("trace cut at %d decoded cleanly (err = %v)", cut, err)
		}
	}
}

// One underlying Write per packet: handing the writer a net.Conn must
// replay the trace as real datagrams.
func TestExportTraceOneWritePerPacket(t *testing.T) {
	records := spreadRecords(exportSample(), 35) // one full packet + one partial
	for _, tc := range []struct {
		name string
		w    func(io.Writer) Writer
	}{
		{"ipfix", func(w io.Writer) Writer { return NewIPFIXWriter(w) }},
		{"sflow", func(w io.Writer) Writer { return NewSFlowWriter(w) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var cw countingWriter
			w := tc.w(&cw)
			for i := range records {
				if err := w.Write(&records[i]); err != nil {
					t.Fatal(err)
				}
			}
			if cw.writes != 1 {
				t.Errorf("writes before Flush = %d, want 1", cw.writes)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if cw.writes != 2 {
				t.Errorf("writes after Flush = %d, want 2", cw.writes)
			}
		})
	}
}

func TestExportTraceRejectsInvalidRecord(t *testing.T) {
	bad := exportSample()[0]
	bad.End = bad.Start.Add(-time.Hour)
	if err := NewIPFIXWriter(&bytes.Buffer{}).Write(&bad); err == nil {
		t.Error("invalid record accepted by IPFIX writer")
	}
	if err := NewSFlowWriter(&bytes.Buffer{}).Write(&bad); err == nil {
		t.Error("invalid record accepted by sFlow writer")
	}
}
