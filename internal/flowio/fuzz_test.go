package flowio

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"plotters/internal/flow"
)

// The fuzz targets pin two codec properties on arbitrary input bytes:
// decoders never panic (they return an error or records, nothing else),
// and whatever they do decode survives an encode→decode round trip.
//
// The text codecs validate on decode, so everything they accept must
// round-trip. The binary decoder deliberately does not validate (the
// fast path trusts its own writer), so its round trip is conditional on
// the re-encode accepting the records.

// fuzzSeeds returns a canonical encoding of sampleRecords plus
// truncated and bit-flipped variants — mutation starting points that
// keep the fuzzer near the interesting decode paths.
func fuzzSeeds(encode func(*bytes.Buffer)) [][]byte {
	var buf bytes.Buffer
	encode(&buf)
	full := buf.Bytes()
	truncated := full[:len(full)*2/3]
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0xff
	return [][]byte{full, truncated, corrupt, {}, []byte("garbage\n")}
}

// decodeAll drains r, returning the records decoded before the first
// error (io.EOF or otherwise).
func decodeAll(r Reader) []flow.Record {
	var out []flow.Record
	for {
		rec, err := r.Next()
		if err != nil {
			return out
		}
		out = append(out, rec)
	}
}

// equivalent reports whether two decoded traces carry the same records.
// Text-codec timestamps keep their zone offset on first decode but are
// normalized to UTC on encode, so times compare by instant, not by
// representation.
func equivalent(a, b []flow.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if !x.Start.Equal(y.Start) || !x.End.Equal(y.End) {
			return false
		}
		x.Start, x.End = time.Time{}, time.Time{}
		y.Start, y.End = time.Time{}, time.Time{}
		if len(x.Payload) == 0 {
			x.Payload = nil
		}
		if len(y.Payload) == 0 {
			y.Payload = nil
		}
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	return true
}

// formattable reports whether every timestamp survives RFC 3339
// re-formatting: a decoded offset time whose UTC equivalent leaves
// years 1–9999 (e.g. 9999-12-31T23:00:00-05:00) formats to a string
// the layout can no longer parse, which is a limitation of the
// timestamp syntax, not a codec bug.
func formattable(records []flow.Record) bool {
	for i := range records {
		for _, ts := range []time.Time{records[i].Start, records[i].End} {
			if y := ts.UTC().Year(); y < 1 || y > 9999 {
				return false
			}
		}
	}
	return true
}

func FuzzBinaryDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(func(buf *bytes.Buffer) {
		if err := WriteAllBinary(buf, sampleRecords()); err != nil {
			f.Fatal(err)
		}
	}) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		records := decodeAll(NewBinaryReader(bytes.NewReader(data)))
		if len(records) == 0 {
			return
		}
		var out bytes.Buffer
		bw := NewBinaryWriter(&out)
		for i := range records {
			if err := bw.Write(&records[i]); err != nil {
				// The binary decoder trusts its writer and skips
				// validation, so arbitrary bytes can decode to records
				// a validating encoder refuses. That is fine; only
				// accepted records must round-trip.
				return
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := ReadAllBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if !reflect.DeepEqual(again, records) {
			t.Errorf("round trip changed records:\nfirst  %v\nsecond %v", records, again)
		}
	})
}

func FuzzCSVDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(func(buf *bytes.Buffer) {
		if err := WriteCSV(buf, sampleRecords()); err != nil {
			f.Fatal(err)
		}
	}) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		records := decodeAll(NewCSVReader(bytes.NewReader(data)))
		if len(records) == 0 || !formattable(records) {
			return
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, records); err != nil {
			t.Fatalf("re-encoding validated records: %v", err)
		}
		again, err := ReadCSV(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if !equivalent(records, again) {
			t.Errorf("round trip changed records:\nfirst  %v\nsecond %v", records, again)
		}
	})
}

func FuzzJSONLDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(func(buf *bytes.Buffer) {
		if err := WriteJSONL(buf, sampleRecords()); err != nil {
			f.Fatal(err)
		}
	}) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		records := decodeAll(NewJSONLReader(bytes.NewReader(data)))
		if len(records) == 0 || !formattable(records) {
			return
		}
		var out bytes.Buffer
		if err := WriteJSONL(&out, records); err != nil {
			t.Fatalf("re-encoding validated records: %v", err)
		}
		again, err := ReadJSONL(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if !equivalent(records, again) {
			t.Errorf("round trip changed records:\nfirst  %v\nsecond %v", records, again)
		}
	})
}
