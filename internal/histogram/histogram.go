// Package histogram implements the non-parametric density approximation
// used by the θ_hm (human- vs. machine-driven) test: histograms whose bin
// width follows the Freedman–Diaconis rule,
//
//	b = 2 · IQR(v) · |v|^(−1/3),
//
// which minimizes the mean-squared error between the histogram and the
// true distribution (Freedman & Diaconis, 1981). The paper builds one
// histogram per host from its per-destination flow interstitial times and
// compares hosts with the Earth Mover's Distance; see package emd.
package histogram

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"plotters/internal/stats"
)

// DefaultMaxBins caps the number of bins in a histogram. Interstitial
// times can span seconds to hours, so an unbounded FD binning of a wide,
// tight-IQR sample could produce millions of bins; the cap bounds both
// memory and the EMD computation downstream. 512 bins at FD width covers
// every sample in our evaluation without truncation.
const DefaultMaxBins = 512

// ErrNoSamples is returned when a histogram is requested for an empty
// sample.
var ErrNoSamples = errors.New("histogram: no samples")

// Histogram is a normalized (unit-mass) histogram over a contiguous range
// [Min, Min+Width·len(Mass)).
type Histogram struct {
	// Min is the left edge of the first bin.
	Min float64
	// Width is the common bin width. Always > 0.
	Width float64
	// Mass holds the normalized per-bin probability mass; it sums to 1.
	Mass []float64
	// N is the number of samples the histogram was built from.
	N int
}

// FDBinWidth returns the Freedman–Diaconis bin width for the sample:
// 2·IQR·n^(−1/3). The width is 0 when the IQR is 0 (at least half the
// sample is a single repeated value) — callers fall back to a degenerate
// single-bin histogram in that case.
func FDBinWidth(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	iqr, err := stats.IQR(samples)
	if err != nil {
		return 0, fmt.Errorf("histogram: computing IQR: %w", err)
	}
	return 2 * iqr * math.Pow(float64(len(samples)), -1.0/3.0), nil
}

// Build constructs a normalized histogram of samples using the
// Freedman–Diaconis bin width, capped at maxBins bins (DefaultMaxBins if
// maxBins <= 0). Samples must be finite; non-finite values are an error.
func Build(samples []float64, maxBins int) (*Histogram, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	if maxBins <= 0 {
		maxBins = DefaultMaxBins
	}
	for _, s := range samples {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("histogram: non-finite sample %v", s)
		}
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]

	width, err := FDBinWidth(sorted)
	if err != nil {
		return nil, err
	}
	span := hi - lo
	if width <= 0 || span == 0 {
		// Degenerate spread: all mass lands in one bin. Use a nominal
		// width of 1 so bin-center geometry stays well defined.
		return &Histogram{Min: lo, Width: 1, Mass: []float64{1}, N: len(sorted)}, nil
	}
	bins := int(math.Ceil(span / width))
	if bins < 1 {
		bins = 1
	}
	if bins > maxBins {
		bins = maxBins
		width = span / float64(bins)
	}

	mass := make([]float64, bins)
	unit := 1 / float64(len(sorted))
	for _, s := range sorted {
		idx := int((s - lo) / width)
		if idx >= bins { // s == hi lands exactly on the right edge
			idx = bins - 1
		}
		mass[idx] += unit
	}
	return &Histogram{Min: lo, Width: width, Mass: mass, N: len(sorted)}, nil
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Mass) }

// Center returns the center coordinate of bin i.
func (h *Histogram) Center(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.Width
}

// Centers returns the coordinates of every bin center.
func (h *Histogram) Centers() []float64 {
	cs := make([]float64, len(h.Mass))
	for i := range cs {
		cs[i] = h.Center(i)
	}
	return cs
}

// TotalMass returns the histogram's total mass (1 up to rounding).
func (h *Histogram) TotalMass() float64 {
	var t float64
	for _, m := range h.Mass {
		t += m
	}
	return t
}

// Signature converts the histogram to the sparse (position, weight) form
// consumed by the EMD solver, dropping empty bins.
func (h *Histogram) Signature() (positions, weights []float64) {
	for i, m := range h.Mass {
		if m == 0 {
			continue
		}
		positions = append(positions, h.Center(i))
		weights = append(weights, m)
	}
	return positions, weights
}

// Mode returns the center of the heaviest bin (the first one on ties).
func (h *Histogram) Mode() float64 {
	best := 0
	for i, m := range h.Mass {
		if m > h.Mass[best] {
			best = i
		}
	}
	return h.Center(best)
}

func (h *Histogram) String() string {
	return fmt.Sprintf("histogram{min=%.4g width=%.4g bins=%d n=%d}", h.Min, h.Width, len(h.Mass), h.N)
}
