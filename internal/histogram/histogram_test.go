package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plotters/internal/stats"
)

func TestFDBinWidthFormula(t *testing.T) {
	// For 1..8, IQR (type-7) is Q3-Q1 = 6.25-2.75 = 3.5.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	got, err := FDBinWidth(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 3.5 * math.Pow(8, -1.0/3.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("FDBinWidth = %v, want %v", got, want)
	}
}

func TestFDBinWidthErrors(t *testing.T) {
	if _, err := FDBinWidth(nil); err != ErrNoSamples {
		t.Errorf("FDBinWidth(nil) err = %v, want ErrNoSamples", err)
	}
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil, 0); err != ErrNoSamples {
		t.Errorf("Build(nil) err = %v, want ErrNoSamples", err)
	}
}

func TestBuildNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := Build([]float64{1, bad}, 0); err == nil {
			t.Errorf("Build with %v: expected error", bad)
		}
	}
}

func TestBuildDegenerate(t *testing.T) {
	// All-equal sample: IQR = 0 → single bin with all mass.
	h, err := Build([]float64{5, 5, 5, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() != 1 || h.Mass[0] != 1 {
		t.Errorf("degenerate histogram = %v", h)
	}
	if h.Min != 5 || h.Width != 1 {
		t.Errorf("degenerate geometry = min %v width %v", h.Min, h.Width)
	}
	if h.N != 4 {
		t.Errorf("N = %d", h.N)
	}

	// Single sample is also degenerate.
	h, err = Build([]float64{3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() != 1 || h.Mode() != 3.5 {
		t.Errorf("single-sample histogram = %v mode %v", h, h.Mode())
	}
}

func TestBuildZeroIQRWideRange(t *testing.T) {
	// IQR is 0 but the range is not: mass collapses to one bin by the
	// documented fallback.
	xs := []float64{0, 1, 1, 1, 1, 1, 1, 9}
	h, err := Build(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() != 1 {
		t.Errorf("zero-IQR histogram bins = %d, want 1", h.Bins())
	}
}

func TestBuildBinCount(t *testing.T) {
	// Uniform 0..100 with n=1000: FD width = 2*IQR*n^(-1/3) ≈ 2*50*0.1 = 10,
	// so ~10 bins.
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	h, err := Build(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() < 8 || h.Bins() > 13 {
		t.Errorf("bins = %d, want ≈10", h.Bins())
	}
}

func TestBuildMaxBinsCap(t *testing.T) {
	// A sample engineered for a huge bin count: tight IQR, huge range.
	xs := make([]float64, 0, 1000)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 990; i++ {
		xs = append(xs, rng.Float64()) // IQR ≈ 0.5
	}
	for i := 0; i < 10; i++ {
		xs = append(xs, 1e6*float64(i+1)) // stretch the range
	}
	h, err := Build(xs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() != 64 {
		t.Errorf("bins = %d, want capped at 64", h.Bins())
	}
	if math.Abs(h.TotalMass()-1) > 1e-9 {
		t.Errorf("mass = %v, want 1", h.TotalMass())
	}
}

func TestBuildRightEdgeSample(t *testing.T) {
	// The maximum sample must land in the last bin, not overflow.
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h, err := Build(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.TotalMass()-1) > 1e-9 {
		t.Errorf("mass = %v, want 1", h.TotalMass())
	}
}

func TestCentersAndSignature(t *testing.T) {
	h := &Histogram{Min: 10, Width: 2, Mass: []float64{0.5, 0, 0.5}, N: 2}
	cs := h.Centers()
	want := []float64{11, 13, 15}
	for i, c := range cs {
		if c != want[i] {
			t.Errorf("Center(%d) = %v, want %v", i, c, want[i])
		}
	}
	pos, w := h.Signature()
	if len(pos) != 2 || pos[0] != 11 || pos[1] != 15 || w[0] != 0.5 || w[1] != 0.5 {
		t.Errorf("Signature = %v, %v", pos, w)
	}
	if h.String() == "" {
		t.Error("String empty")
	}
}

func TestMode(t *testing.T) {
	h := &Histogram{Min: 0, Width: 1, Mass: []float64{0.2, 0.5, 0.3}, N: 10}
	if got := h.Mode(); got != 1.5 {
		t.Errorf("Mode = %v, want 1.5", got)
	}
}

// Property: for any valid sample, the histogram mass sums to 1, every bin
// is non-negative, and the bin geometry covers the sample range.
func TestBuildPropertyMassConservation(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0:0]
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		h, err := Build(xs, 0)
		if err != nil {
			return false
		}
		if math.Abs(h.TotalMass()-1) > 1e-6 {
			return false
		}
		for _, m := range h.Mass {
			if m < 0 {
				return false
			}
		}
		lo, _ := stats.Min(xs)
		hi, _ := stats.Max(xs)
		right := h.Min + float64(len(h.Mass))*h.Width
		return h.Min <= lo && right >= hi-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: histograms of shifted samples are shifted histograms — the
// mass vector is identical and Min moves by the shift. This underpins the
// EMD shift-distance property the paper relies on.
func TestBuildPropertyShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 30
		}
		shift := rng.Float64() * 1000
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		h1, err1 := Build(xs, 0)
		h2, err2 := Build(shifted, 0)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if h1.Bins() != h2.Bins() {
			t.Fatalf("trial %d: bins %d vs %d", trial, h1.Bins(), h2.Bins())
		}
		for i := range h1.Mass {
			if math.Abs(h1.Mass[i]-h2.Mass[i]) > 1e-9 {
				t.Fatalf("trial %d: mass differs at bin %d", trial, i)
			}
		}
		if math.Abs((h2.Min-h1.Min)-shift) > 1e-6 {
			t.Fatalf("trial %d: min shift = %v, want %v", trial, h2.Min-h1.Min, shift)
		}
	}
}

func BenchmarkBuild1k(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 60
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(xs, 0); err != nil {
			b.Fatal(err)
		}
	}
}
