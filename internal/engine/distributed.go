package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"plotters/internal/core"
	"plotters/internal/flow"
)

// DistConfig shapes a DistributedDetector — the coordinator-side half
// of the distributed pipeline. Each of Shards shard processes runs a
// WindowedDetector over its host-hash slice with a core.LocalDetector
// attached and ships the resulting ShardSummary per sealed window; the
// DistributedDetector collects them, decides when a window is complete,
// and runs the global phase.
type DistConfig struct {
	// Shards is the total shard count of the deployment. Required.
	Shards int
	// Core tunes the global phase (GlobalPass) and must match the
	// configuration the shards ran LocalPass with — internal/dist
	// enforces that with a config fingerprint at connection time.
	Core core.Config
	// Detectors, when non-empty, lists the detectors run over every
	// completed window. A *core.PaperDetector runs as GlobalPass over
	// the shard sketches (bit-identical to single-process FindPlotters);
	// any other detector consumes the merged summary's reconstructed
	// FeatureSet. Empty means the paper pipeline alone, configured by
	// Core.
	Detectors []core.Detector
}

// Validate checks the configuration.
func (c *DistConfig) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("engine: distributed Shards = %d must be >= 1", c.Shards)
	}
	return c.Core.Validate()
}

// DistributedDetector assembles per-shard window summaries into global
// detection results. Windows seal per shard by watermark: a shard has
// reported window w once it either offered w's summary or advanced its
// watermark past w's end (proving w was empty on that shard). A window
// emits only when every shard has reported — or when the caller force-
// seals it (timeout, shutdown), in which case the result carries an
// explicit Partial mark. Emission is always in ascending window order.
//
// Safe for concurrent use: the coordinator's per-connection readers all
// feed one detector.
type DistributedDetector struct {
	mu         sync.Mutex
	cfg        DistConfig
	emit       func(*Result) error
	detectors  []core.Detector
	watermarks []time.Time
	pending    map[int]*pendingWindow
	maxSealed  int // highest sealed window index (-1 before any)
	emitted    int
}

type pendingWindow struct {
	window flow.Window
	sums   map[int]*core.ShardSummary
}

// NewDistributed creates the coordinator-side detector. emit receives
// each completed window's result in ascending window order; a non-nil
// error aborts the triggering Offer, Watermark, SealWindow, or Flush.
func NewDistributed(cfg DistConfig, emit func(*Result) error) (*DistributedDetector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	detectors := cfg.Detectors
	if len(detectors) == 0 {
		pd, err := core.NewPaperDetector(cfg.Core)
		if err != nil {
			return nil, err
		}
		detectors = []core.Detector{pd}
	}
	return &DistributedDetector{
		cfg:        cfg,
		emit:       emit,
		detectors:  detectors,
		watermarks: make([]time.Time, cfg.Shards),
		pending:    make(map[int]*pendingWindow),
		maxSealed:  -1,
	}, nil
}

// Windows returns how many window results have been emitted.
func (d *DistributedDetector) Windows() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.emitted
}

// Pending returns how many windows are collected but not yet sealed.
func (d *DistributedDetector) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// MaxSealed returns the highest sealed window index (-1 before any).
func (d *DistributedDetector) MaxSealed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.maxSealed
}

// Offer folds one shard's summary for one window index into the
// detector, sealing every window the new watermark completes. It
// returns false for a duplicate — a summary already held for that
// (shard, window), or a window already sealed — which is a normal
// consequence of a shard resending after reconnect, not an error.
func (d *DistributedDetector) Offer(shard, index int, sum *core.ShardSummary) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if shard < 0 || shard >= d.cfg.Shards {
		return false, fmt.Errorf("engine: summary from shard %d outside [0,%d)", shard, d.cfg.Shards)
	}
	if sum == nil {
		return false, fmt.Errorf("engine: nil summary from shard %d", shard)
	}
	if sum.Shards != d.cfg.Shards {
		return false, fmt.Errorf("engine: shard %d summarizes a %d-shard split but this coordinator runs %d shards", shard, sum.Shards, d.cfg.Shards)
	}
	if sum.Shard != shard {
		return false, fmt.Errorf("engine: summary claims shard %d but arrived attributed to shard %d", sum.Shard, shard)
	}
	// A summary for w proves the shard's frontier passed w's end.
	if sum.Window.To.After(d.watermarks[shard]) && !sum.Partial {
		d.watermarks[shard] = sum.Window.To
	}
	if index <= d.maxSealed {
		return false, d.trySeal()
	}
	pw := d.pending[index]
	if pw == nil {
		pw = &pendingWindow{window: sum.Window, sums: make(map[int]*core.ShardSummary)}
		d.pending[index] = pw
	} else if !pw.window.From.Equal(sum.Window.From) || !pw.window.To.Equal(sum.Window.To) {
		return false, fmt.Errorf("engine: shard %d places window %d at [%v, %v) but other shards place it at [%v, %v) — window geometry disagrees",
			shard, index, sum.Window.From, sum.Window.To, pw.window.From, pw.window.To)
	}
	if _, dup := pw.sums[shard]; dup {
		return false, d.trySeal()
	}
	pw.sums[shard] = sum
	return true, d.trySeal()
}

// Watermark declares that shard will produce no further summary for any
// window ending at or before t (stream punctuation forwarded from the
// shard's engine), sealing every window that completes.
func (d *DistributedDetector) Watermark(shard int, t time.Time) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if shard < 0 || shard >= d.cfg.Shards {
		return fmt.Errorf("engine: watermark from shard %d outside [0,%d)", shard, d.cfg.Shards)
	}
	if t.After(d.watermarks[shard]) {
		d.watermarks[shard] = t
	}
	return d.trySeal()
}

// SealWindow force-seals one pending window without waiting for the
// remaining shards — the timeout path. The result is marked Partial
// unless every shard had in fact reported. Unknown or already-sealed
// indices are a no-op. Earlier pending windows are sealed first so
// emission order stays ascending.
func (d *DistributedDetector) SealWindow(index int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, idx := range d.pendingOrder() {
		if idx > index {
			break
		}
		if err := d.seal(idx); err != nil {
			return err
		}
	}
	return nil
}

// Flush force-seals every pending window in order — the shutdown path.
func (d *DistributedDetector) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, idx := range d.pendingOrder() {
		if err := d.seal(idx); err != nil {
			return err
		}
	}
	return nil
}

func (d *DistributedDetector) pendingOrder() []int {
	order := make([]int, 0, len(d.pending))
	for idx := range d.pending {
		order = append(order, idx)
	}
	sort.Ints(order)
	return order
}

func (d *DistributedDetector) minWatermark() time.Time {
	min := d.watermarks[0]
	for _, w := range d.watermarks[1:] {
		if w.Before(min) {
			min = w
		}
	}
	return min
}

// trySeal seals every pending window, in ascending index order, whose
// end the slowest shard's watermark has passed. Called with mu held.
func (d *DistributedDetector) trySeal() error {
	min := d.minWatermark()
	for _, idx := range d.pendingOrder() {
		pw := d.pending[idx]
		if pw.window.To.After(min) {
			break
		}
		if err := d.seal(idx); err != nil {
			return err
		}
	}
	return nil
}

// seal runs the global phase over one pending window and emits. Called
// with mu held.
func (d *DistributedDetector) seal(index int) error {
	pw := d.pending[index]
	delete(d.pending, index)
	if index > d.maxSealed {
		d.maxSealed = index
	}

	reg := d.cfg.Core.Metrics
	partial := false
	sums := make([]*core.ShardSummary, 0, len(pw.sums))
	for shard := 0; shard < d.cfg.Shards; shard++ {
		if sum, ok := pw.sums[shard]; ok {
			sums = append(sums, sum)
			partial = partial || sum.Partial
			continue
		}
		// No summary: complete if the shard's watermark proves the
		// window empty on it, provisional otherwise (force-seal).
		if pw.window.To.After(d.watermarks[shard]) {
			partial = true
		}
	}
	merged, err := core.MergeSummaries(sums)
	if err != nil {
		return fmt.Errorf("engine: window %d [%v, %v): %w", index, pw.window.From, pw.window.To, err)
	}

	t := reg.StartStage("engine/globalpass")
	detections := make([]*core.Detection, 0, len(d.detectors))
	var paper *core.Result
	var src *flow.FeatureSet
	for _, det := range d.detectors {
		dt := t.Child(det.Name())
		var detn *core.Detection
		if pd, ok := det.(*core.PaperDetector); ok {
			res, err := core.GlobalPass(sums, pd.Config())
			if err == nil {
				detn = &core.Detection{Detector: det.Name(), Suspects: res.Suspects, Paper: res}
			} else {
				dt.Stop()
				t.Stop()
				return fmt.Errorf("engine: window %d [%v, %v): %s: %w", index, pw.window.From, pw.window.To, det.Name(), err)
			}
		} else {
			if src == nil {
				src = merged.FeatureSet()
			}
			detn, err = det.Detect(src)
			if err != nil {
				dt.Stop()
				t.Stop()
				return fmt.Errorf("engine: window %d [%v, %v): %w", index, pw.window.From, pw.window.To, err)
			}
		}
		dt.Stop()
		detections = append(detections, detn)
		if paper == nil && detn.Paper != nil {
			paper = detn.Paper
		}
		reg.Gauge("engine/suspects/" + detn.Detector).Set(int64(len(detn.Suspects)))
	}
	t.Stop()

	result := &Result{
		Window:     pw.window,
		Index:      index,
		Hosts:      len(merged.Hosts),
		Records:    merged.Records(),
		Detection:  paper,
		Detections: detections,
		Partial:    partial || merged.Partial,
	}
	d.emitted++
	reg.Counter("engine/windows").Add(1)
	if result.Partial {
		reg.Counter("engine/windows/partial").Add(1)
	}
	reg.Gauge("engine/window_index").Set(int64(index))
	reg.Gauge("engine/window_hosts").Set(int64(result.Hosts))
	if d.emit == nil {
		return nil
	}
	return d.emit(result)
}
