package engine

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"plotters/internal/community"
	"plotters/internal/core"
	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// communityTestConfig is scaled to the synthetic streams here: the
// machine hosts share a handful of destinations, the humans roam a
// 40-destination pool.
func communityTestConfig() community.Config {
	cfg := community.DefaultConfig()
	cfg.Graph = community.GraphConfig{MinSharedContacts: 2, MaxFanIn: 10}
	cfg.MinCommunitySize = 2
	cfg.MinAvgDegree = 1
	return cfg
}

func detectorPair(t *testing.T, coreCfg core.Config) []core.Detector {
	t.Helper()
	pd, err := core.NewPaperDetector(coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	commCfg := communityTestConfig()
	commCfg.Metrics = coreCfg.Metrics
	cd, err := community.New(commCfg)
	if err != nil {
		t.Fatal(err)
	}
	return []core.Detector{pd, cd}
}

// run feeds records through a freshly built engine and returns the
// emitted results.
func run(t *testing.T, cfg Config, records []flow.Record) []*Result {
	t.Helper()
	var results []*Result
	d, err := New(cfg, func(r *Result) error { results = append(results, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if err := d.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	return results
}

// An ensemble engine run must leave the paper detector's verdicts
// untouched: window for window, the first detection equals the default
// single-detector engine's, and Result.Detection still carries the full
// paper result.
func TestEnsembleEnginePreservesPaperDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	base := baseTime()
	records := synthStream(rng, base, 3*time.Hour)

	single := run(t, Config{Window: time.Hour, Origin: base, Shards: 4, Core: testConfig()}, records)
	ensemble := run(t, Config{
		Window: time.Hour, Origin: base, Shards: 4, Core: testConfig(),
		Detectors: detectorPair(t, testConfig()),
	}, records)

	if len(ensemble) != len(single) {
		t.Fatalf("ensemble emitted %d windows, single %d", len(ensemble), len(single))
	}
	for i, res := range ensemble {
		detectionEqual(t, res.Window.String(), res.Detection, single[i].Detection)
		if len(res.Detections) != 2 {
			t.Fatalf("window %d: %d detections, want 2", i, len(res.Detections))
		}
		if res.Detections[0].Detector != core.PaperName || res.Detections[1].Detector != community.Name {
			t.Errorf("window %d detector order: %q, %q", i,
				res.Detections[0].Detector, res.Detections[1].Detector)
		}
		if res.Detections[0].Paper != res.Detection {
			t.Errorf("window %d: Detection not aliased to the paper detection", i)
		}
		if _, ok := res.Detections[1].Details.(*community.Report); !ok {
			t.Errorf("window %d: community Details is %T", i, res.Detections[1].Details)
		}
	}
	// Default engine results also populate Detections (length 1).
	for i, res := range single {
		if len(res.Detections) != 1 || res.Detections[0].Paper != res.Detection {
			t.Errorf("single window %d: Detections misshaped", i)
		}
	}
}

// Each window's community verdict must equal the community detector run
// directly over that window's records — for tumbling (single-pane) and
// sliding (merged-pane) windows alike, proving contact sets survive the
// engine's sealing and merge paths.
func TestEngineCommunityMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	base := baseTime()
	records := synthStream(rng, base, 3*time.Hour)

	cd, err := community.New(communityTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		slide time.Duration
	}{
		{"tumbling", 0},
		{"sliding", 30 * time.Minute},
	} {
		t.Run(tc.name, func(t *testing.T) {
			results := run(t, Config{
				Window: time.Hour, Slide: tc.slide, Origin: base, Shards: 4,
				Core: testConfig(), Detectors: detectorPair(t, testConfig()),
			}, records)
			if len(results) == 0 {
				t.Fatal("no windows emitted")
			}
			for _, res := range results {
				sub := res.Window.Filter(records)
				src := flow.ExtractFeatureSet(sub, flow.FeatureOptions{
					NewPeerGrace: testConfig().NewPeerGrace,
				}, res.Window)
				want, err := cd.Detect(src)
				if err != nil {
					t.Fatal(err)
				}
				got := res.Detections[1]
				if !reflect.DeepEqual(got.Suspects, want.Suspects) {
					t.Errorf("%v: community suspects = %v, want %v", res.Window,
						got.Suspects.Sorted(), want.Suspects.Sorted())
				}
				gr, wr := got.Details.(*community.Report), want.Details.(*community.Report)
				if gr.GraphHosts != wr.GraphHosts || gr.GraphEdges != wr.GraphEdges ||
					len(gr.Communities) != len(wr.Communities) {
					t.Errorf("%v: graph summary %d/%d/%d, want %d/%d/%d", res.Window,
						gr.GraphHosts, gr.GraphEdges, len(gr.Communities),
						wr.GraphHosts, wr.GraphEdges, len(wr.Communities))
				}
			}
		})
	}
}

// Per-detector instrumentation: one child stage and one suspects gauge
// per detector per window.
func TestEnsembleEngineMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	base := baseTime()
	records := synthStream(rng, base, 2*time.Hour)

	reg := metrics.New()
	coreCfg := testConfig()
	coreCfg.Metrics = reg
	results := run(t, Config{
		Window: time.Hour, Origin: base, Shards: 2, Core: coreCfg,
		Detectors: detectorPair(t, coreCfg),
	}, records)
	windows := int64(len(results))
	if windows == 0 {
		t.Fatal("no windows emitted")
	}
	for _, stage := range []string{
		"engine/detect",
		"engine/detect/" + core.PaperName,
		"engine/detect/" + community.Name,
		"community/build", "community/propagate", "community/score",
	} {
		if got := reg.Stage(stage).Count(); got != windows {
			t.Errorf("stage %s ran %d times, want %d", stage, got, windows)
		}
	}
	last := results[len(results)-1]
	if got := reg.Gauge("engine/suspects/" + core.PaperName).Value(); got != int64(len(last.Detections[0].Suspects)) {
		t.Errorf("paper suspects gauge = %d, want %d", got, len(last.Detections[0].Suspects))
	}
	if got := reg.Gauge("engine/suspects/" + community.Name).Value(); got != int64(len(last.Detections[1].Suspects)) {
		t.Errorf("community suspects gauge = %d, want %d", got, len(last.Detections[1].Suspects))
	}
}
