package engine

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"plotters/internal/core"
	"plotters/internal/flow"
	"plotters/internal/metrics"
)

func baseTime() time.Time {
	return time.Date(2007, 11, 5, 9, 0, 0, 0, time.UTC)
}

// testConfig is a pipeline config scaled down to the handful-of-hosts
// streams these tests synthesize.
func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MinInterstitialSamples = 4
	return cfg
}

// synthStream builds a start-ordered stream over [base, base+span): a
// few periodic "machine" hosts (fixed short timers, tiny failed flows —
// plotter-shaped) and a crowd of randomized "human" hosts.
func synthStream(rng *rand.Rand, base time.Time, span time.Duration) []flow.Record {
	var out []flow.Record
	add := func(src, dst flow.IP, at time.Time, bytes uint64, state flow.ConnState) {
		out = append(out, flow.Record{
			Src: src, Dst: dst, SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
			Start: at, End: at.Add(time.Second),
			SrcPkts: 1, DstPkts: 1, SrcBytes: bytes, DstBytes: 100,
			State: state,
		})
	}
	// Machine-timed hosts 1..3: one flow every ~40s to a tiny peer pool,
	// mostly failing.
	for h := flow.IP(1); h <= 3; h++ {
		period := 35 * time.Second
		for at := base.Add(time.Duration(h) * time.Second); at.Before(base.Add(span)); at = at.Add(period) {
			state := flow.StateFailed
			if rng.Intn(4) == 0 {
				state = flow.StateEstablished
			}
			add(h, flow.IP(200+uint32(h)), at, 40, state)
		}
	}
	// Human-ish hosts 10..24: random gaps, larger transfers, wide peer
	// sets, occasional failures.
	for h := flow.IP(10); h < 25; h++ {
		at := base.Add(time.Duration(rng.Intn(600)) * time.Second)
		for at.Before(base.Add(span)) {
			state := flow.StateEstablished
			if rng.Intn(5) == 0 {
				state = flow.StateFailed
			}
			add(h, flow.IP(100+uint32(rng.Intn(40))), at, uint64(500+rng.Intn(20000)), state)
			at = at.Add(time.Duration(20+rng.Intn(400)) * time.Second)
		}
	}
	flow.SortByStart(out)
	return out
}

// detectionEqual compares two pipeline outcomes stage by stage.
func detectionEqual(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Reduction.Kept, want.Reduction.Kept) ||
		got.Reduction.Threshold != want.Reduction.Threshold {
		t.Errorf("%s: reduction differs: got %v@%v want %v@%v", label,
			got.Reduction.Kept.Sorted(), got.Reduction.Threshold,
			want.Reduction.Kept.Sorted(), want.Reduction.Threshold)
	}
	if !reflect.DeepEqual(got.Volume.Kept, want.Volume.Kept) ||
		got.Volume.Threshold != want.Volume.Threshold {
		t.Errorf("%s: θ_vol differs", label)
	}
	if !reflect.DeepEqual(got.Churn.Kept, want.Churn.Kept) ||
		got.Churn.Threshold != want.Churn.Threshold {
		t.Errorf("%s: θ_churn differs", label)
	}
	if !reflect.DeepEqual(got.HM.Kept, want.HM.Kept) ||
		got.HM.Threshold != want.HM.Threshold {
		t.Errorf("%s: θ_hm differs", label)
	}
	if !reflect.DeepEqual(got.Suspects, want.Suspects) {
		t.Errorf("%s: suspects differ: got %v want %v", label,
			got.Suspects.Sorted(), want.Suspects.Sorted())
	}
}

// Tumbling windows over a continuous stream must each reproduce the
// batch pipeline over exactly that window's records.
func TestTumblingWindowsMatchBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	base := baseTime()
	records := synthStream(rng, base, 3*time.Hour)

	var results []*Result
	d, err := New(Config{
		Window: time.Hour,
		Origin: base,
		Shards: 4,
		Core:   testConfig(),
	}, func(r *Result) error { results = append(results, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if err := d.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	if len(results) != 3 {
		t.Fatalf("got %d windows, want 3", len(results))
	}
	for i, res := range results {
		wantWindow := flow.Window{
			From: base.Add(time.Duration(i) * time.Hour),
			To:   base.Add(time.Duration(i+1) * time.Hour),
		}
		if res.Window != wantWindow {
			t.Errorf("window %d bounds = %v, want %v", i, res.Window, wantWindow)
		}
		if res.Index != i {
			t.Errorf("window %d index = %d", i, res.Index)
		}
		sub := wantWindow.Filter(records)
		want, err := core.FindPlotters(sub, nil, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		detectionEqual(t, res.Window.String(), res.Detection, want)
		if res.Records != len(sub) {
			t.Errorf("window %d records = %d, want %d", i, res.Records, len(sub))
		}
		if res.Hosts != len(want.Analysis.Features()) {
			t.Errorf("window %d hosts = %d, want %d", i, res.Hosts, len(want.Analysis.Features()))
		}
	}
	if d.Windows() != 3 {
		t.Errorf("Windows() = %d", d.Windows())
	}
}

// Sliding windows must reproduce the batch pipeline over each trailing
// Window of records, advancing every Slide.
func TestSlidingWindowsMatchBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	base := baseTime()
	records := synthStream(rng, base, 4*time.Hour)

	var results []*Result
	d, err := New(Config{
		Window: 2 * time.Hour,
		Slide:  time.Hour,
		Origin: base,
		Core:   testConfig(),
	}, func(r *Result) error { results = append(results, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if err := d.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	// Panes at 1h: windows [0,2h) [1h,3h) [2h,4h).
	if len(results) != 3 {
		t.Fatalf("got %d windows, want 3", len(results))
	}
	for i, res := range results {
		wantWindow := flow.Window{
			From: base.Add(time.Duration(i) * time.Hour),
			To:   base.Add(time.Duration(i+2) * time.Hour),
		}
		if res.Window != wantWindow {
			t.Errorf("window %d bounds = %v, want %v", i, res.Window, wantWindow)
		}
		sub := wantWindow.Filter(records)
		want, err := core.FindPlotters(sub, nil, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		detectionEqual(t, res.Window.String(), res.Detection, want)
	}
}

// AdvanceTo must seal windows without needing a record past the
// boundary, and silent stretches must fast-forward without emitting
// empty windows.
func TestAdvanceToAndEmptyGap(t *testing.T) {
	base := baseTime()
	var results []*Result
	d, err := New(Config{
		Window: time.Hour,
		Origin: base,
		Core:   testConfig(),
	}, func(r *Result) error { results = append(results, r); return nil })
	if err != nil {
		t.Fatal(err)
	}

	mk := func(src, dst flow.IP, at time.Time) flow.Record {
		return flow.Record{
			Src: src, Dst: dst, SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
			Start: at, End: at.Add(time.Second),
			SrcPkts: 1, DstPkts: 1, SrcBytes: 10, DstBytes: 10,
			State: flow.StateEstablished,
		}
	}
	r1 := mk(1, 100, base.Add(10*time.Minute))
	if err := d.Add(&r1); err != nil {
		t.Fatal(err)
	}
	// Punctuate: the first window closes with no record past it.
	if err := d.AdvanceTo(base.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Index != 0 {
		t.Fatalf("after AdvanceTo: %d results", len(results))
	}

	// A week of silence, then one more record: exactly one more window,
	// with the right slot index, no empty emissions in between.
	r2 := mk(1, 100, base.Add(7*24*time.Hour).Add(30*time.Minute))
	if err := d.Add(&r2); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("after gap: %d results, want 2", len(results))
	}
	if want := 7 * 24; results[1].Index != want {
		t.Errorf("post-gap window index = %d, want %d", results[1].Index, want)
	}
}

// Records more than MaxSkew late are dropped with ErrLateRecord; the
// stream keeps going.
func TestLateRecordDropped(t *testing.T) {
	base := baseTime()
	d, err := New(Config{
		Window:  time.Hour,
		Origin:  base,
		MaxSkew: time.Minute,
		Core:    testConfig(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(at time.Time) flow.Record {
		return flow.Record{
			Src: 1, Dst: 100, SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
			Start: at, End: at.Add(time.Second),
			SrcPkts: 1, DstPkts: 1, SrcBytes: 10, DstBytes: 10,
			State: flow.StateEstablished,
		}
	}
	r1 := mk(base.Add(30 * time.Minute))
	if err := d.Add(&r1); err != nil {
		t.Fatal(err)
	}
	// Advance past the first boundary plus skew: window [0, 1h) seals.
	r2 := mk(base.Add(61*time.Minute + time.Second))
	if err := d.Add(&r2); err != nil {
		t.Fatal(err)
	}
	// A record below the sealed boundary can no longer be windowed.
	late := mk(base.Add(50 * time.Minute))
	err = d.Add(&late)
	if !errors.Is(err, ErrLateRecord) {
		t.Fatalf("late record: err = %v, want ErrLateRecord", err)
	}
	r3 := mk(base.Add(62 * time.Minute))
	if err := d.Add(&r3); err != nil {
		t.Errorf("stream did not continue after a drop: %v", err)
	}
	if d.Dropped() != 1 {
		t.Errorf("Dropped() = %d, want 1", d.Dropped())
	}
}

// DropLate turns skew drops into a statistic: Add returns nil, the drop
// is visible in Dropped() and the "engine/drops" counter, and on-time
// records are unaffected — what a live collector needs when one packet
// straggles in after its window sealed.
func TestDropLateModeCountsNotErrors(t *testing.T) {
	base := baseTime()
	coreCfg := testConfig()
	coreCfg.Metrics = metrics.New()
	d, err := New(Config{
		Window:   time.Hour,
		Origin:   base,
		MaxSkew:  time.Minute,
		DropLate: true,
		Core:     coreCfg,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(at time.Time) flow.Record {
		return flow.Record{
			Src: 1, Dst: 100, SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
			Start: at, End: at.Add(time.Second),
			SrcPkts: 1, DstPkts: 1, SrcBytes: 10, DstBytes: 10,
			State: flow.StateEstablished,
		}
	}
	for _, at := range []time.Duration{30 * time.Minute, 61*time.Minute + time.Second} {
		r := mk(base.Add(at))
		if err := d.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ { // three stragglers below the sealed boundary
		late := mk(base.Add(50 * time.Minute))
		if err := d.Add(&late); err != nil {
			t.Fatalf("late record %d: err = %v, want nil in DropLate mode", i, err)
		}
	}
	if d.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", d.Dropped())
	}
	if n := coreCfg.Metrics.Counter("engine/drops").Value(); n != 3 {
		t.Errorf("engine/drops = %d, want 3", n)
	}
	r := mk(base.Add(62 * time.Minute))
	if err := d.Add(&r); err != nil {
		t.Errorf("on-time record after drops: %v", err)
	}
	if n := coreCfg.Metrics.Counter("engine/records").Value(); n != 3 {
		t.Errorf("engine/records = %d, want 3 (drops must not count as ingested)", n)
	}
}

// CarryFirstSeen keeps θ_churn grace anchors across window rotations.
func TestEngineCarryFirstSeen(t *testing.T) {
	base := baseTime()
	cfg := testConfig()
	run := func(carry bool) int {
		var results []*Result
		d, err := New(Config{
			Window:         time.Hour,
			Origin:         base,
			CarryFirstSeen: carry,
			Core:           cfg,
		}, func(r *Result) error { results = append(results, r); return nil })
		if err != nil {
			t.Fatal(err)
		}
		mk := func(dst flow.IP, at time.Time) flow.Record {
			return flow.Record{
				Src: 1, Dst: dst, SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
				Start: at, End: at.Add(time.Second),
				SrcPkts: 1, DstPkts: 1, SrcBytes: 10, DstBytes: 10,
				State: flow.StateEstablished,
			}
		}
		r1 := mk(100, base)
		r2 := mk(101, base.Add(2*time.Hour).Add(time.Minute))
		if err := d.Add(&r1); err != nil {
			t.Fatal(err)
		}
		if err := d.Add(&r2); err != nil {
			t.Fatal(err)
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		if len(results) != 2 {
			t.Fatalf("results = %d, want 2 (empty middle window skipped)", len(results))
		}
		f := results[1].Detection.Analysis.Features()[1]
		if f == nil {
			t.Fatal("host 1 missing from second window")
		}
		return f.NewPeers
	}
	if got := run(true); got != 1 {
		t.Errorf("carry on: NewPeers = %d, want 1", got)
	}
	if got := run(false); got != 0 {
		t.Errorf("carry off: NewPeers = %d, want 0", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Window: time.Hour, Core: core.DefaultConfig()}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Core: core.DefaultConfig()},                                             // no window
		{Window: -time.Hour, Core: core.DefaultConfig()},                         // negative
		{Window: time.Hour, Slide: -time.Second, Core: core.DefaultConfig()},     // negative slide
		{Window: time.Hour, Slide: 25 * time.Minute, Core: core.DefaultConfig()}, // indivisible
		{Window: time.Hour, Slide: 2 * time.Hour, Core: core.DefaultConfig()},    // slide > window
		{Window: time.Hour, MaxSkew: -time.Second, Core: core.DefaultConfig()},   // negative skew
		{Window: time.Hour, Core: core.Config{}},                                 // invalid core
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Error("New accepted an invalid config")
	}
}

// Slide == Window is tumbling, just spelled differently.
func TestSlideEqualsWindowIsTumbling(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	base := baseTime()
	records := synthStream(rng, base, 2*time.Hour)

	run := func(slide time.Duration) []*Result {
		var results []*Result
		d, err := New(Config{
			Window: time.Hour,
			Slide:  slide,
			Origin: base,
			Core:   testConfig(),
		}, func(r *Result) error { results = append(results, r); return nil })
		if err != nil {
			t.Fatal(err)
		}
		for i := range records {
			if err := d.Add(&records[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		return results
	}
	tumbling, aliased := run(0), run(time.Hour)
	if len(tumbling) != len(aliased) {
		t.Fatalf("result counts differ: %d vs %d", len(tumbling), len(aliased))
	}
	for i := range tumbling {
		if tumbling[i].Window != aliased[i].Window {
			t.Errorf("window %d bounds differ", i)
		}
		detectionEqual(t, tumbling[i].Window.String(), aliased[i].Detection, tumbling[i].Detection)
	}
}
