// Package engine turns the batch FindPlotters pipeline into a
// continuous windowed detector, the shape a production border
// deployment needs: flow records stream in, per-host features
// accumulate in a sharded store (internal/flow.ShardedExtractor), and
// at every window boundary the engine seals the elapsed window, runs
// the full detection pipeline (reduction → θ_vol → θ_churn → θ_hm) over
// the sealed features, emits a per-window Result, and rotates state —
// the trace never sits in memory, and feature accumulation never blocks
// on detection of a sealed window's shard-sealed features.
//
// Windows are tumbling by default (the paper's per-day detection
// windows, §V); setting Slide < Window turns them into overlapping
// sliding windows built by merging Window/Slide sealed panes
// (flow.MergePanes), trading memory for detection latency.
package engine

import (
	"errors"
	"fmt"
	"time"

	"plotters/internal/core"
	"plotters/internal/flow"
)

// ErrLateRecord marks a record that arrived more than MaxSkew behind
// the stream frontier and was dropped. Callers running over live feeds
// typically count these and continue (errors.Is).
var ErrLateRecord = errors.New("engine: record beyond MaxSkew behind the frontier")

// Config shapes a WindowedDetector.
type Config struct {
	// Window is the detection window length (the paper uses 24-hour
	// collection days; the synthesized corpus 6-hour collection
	// windows). Required.
	Window time.Duration
	// Slide, when positive and less than Window, makes windows slide:
	// a detection runs every Slide over the trailing Window of traffic.
	// Window must be a whole multiple of Slide. Zero means tumbling
	// windows (back to back, no overlap).
	Slide time.Duration
	// Origin aligns window boundaries: windows start at Origin + i*Slide
	// (tumbling: Origin + i*Window). The zero value aligns the first
	// window at the first record's start time.
	Origin time.Time
	// Shards is the feature store's shard count (≤ 0 = one per CPU).
	Shards int
	// MaxSkew is the reorder tolerance of the feed: records may arrive
	// up to MaxSkew behind the latest start time seen (the slack a flow
	// monitor's end-of-flow reporting needs). Window boundaries are
	// sealed only once the frontier has advanced MaxSkew past them.
	MaxSkew time.Duration
	// DropLate makes records beyond MaxSkew a non-fatal event: Add
	// counts the drop (Dropped, "engine/drops") and returns nil instead
	// of ErrLateRecord. This is the mode a live collector wants — one
	// packet straggling in after a window sealed is a statistic, not a
	// reason to abort ingest. Off, Add surfaces ErrLateRecord per
	// record and the caller decides (the batch-replay behavior, where a
	// late record means the trace is broken).
	DropLate bool
	// CarryFirstSeen keeps each host's first-seen time across window
	// rotations, so the θ_churn new-peer grace period stays anchored at
	// the host's earliest observed activity — the behavior a batch
	// extraction over the whole stream would have — instead of
	// restarting every window. Off, every window is self-contained
	// (the paper's independent per-day windows).
	CarryFirstSeen bool
	// Internal selects monitored initiator addresses (nil = all).
	Internal func(flow.IP) bool
	// StateDir, when set, names the directory where a checkpoint
	// manager persists this engine's snapshots and write-ahead log.
	// The engine itself never touches the filesystem — the field rides
	// on the config so one struct can describe a durable deployment end
	// to end (internal/checkpoint and the plotfind -state-dir flag
	// consume it).
	StateDir string
	// Core tunes the per-window detection pipeline. Core.Metrics, when
	// set, also instruments the engine ("engine/..." stages and
	// window gauges) and the sharded store.
	Core core.Config
	// Detectors, when non-empty, lists the detectors run over every
	// sealed window, in order (the multi-detector framework: the paper
	// pipeline and the mutual-contact community detector are the two
	// stock implementations). Empty means the paper pipeline alone,
	// configured by Core — the original single-detector behavior, bit
	// for bit.
	Detectors []core.Detector
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("engine: Window must be positive, got %v", c.Window)
	}
	if c.Slide < 0 {
		return fmt.Errorf("engine: Slide must be non-negative, got %v", c.Slide)
	}
	if c.Slide > 0 {
		if c.Slide > c.Window {
			return fmt.Errorf("engine: Slide %v exceeds Window %v", c.Slide, c.Window)
		}
		if c.Window%c.Slide != 0 {
			return fmt.Errorf("engine: Window %v is not a multiple of Slide %v", c.Window, c.Slide)
		}
	}
	if c.MaxSkew < 0 {
		return fmt.Errorf("engine: MaxSkew must be non-negative, got %v", c.MaxSkew)
	}
	return c.Core.Validate()
}

// Result is one sealed detection window's outcome.
type Result struct {
	// Window is the detection window the result covers (half-open).
	Window flow.Window
	// Index is the window's absolute slot number since the stream
	// origin: Window.From == origin + Index*Slide (tumbling:
	// Index*Window). Slots whose windows held no traffic emit nothing,
	// so indices observed by the caller may skip.
	Index int
	// Hosts is the number of monitored hosts with features in the
	// window.
	Hosts int
	// Records is the number of flow records attributed to those hosts.
	Records int
	// Detection is the full FindPlotters outcome over the window, every
	// intermediate stage included — nil when Config.Detectors excludes
	// the paper pipeline. Kept alongside Detections so single-detector
	// consumers need no unwrapping.
	Detection *core.Result
	// Detections holds every configured detector's verdict over the
	// window, in Config.Detectors order (the default configuration runs
	// the paper pipeline alone, so Detections has one element whose
	// Paper field is Detection).
	Detections []*core.Detection
	// Partial marks a window sealed by Flush before the feed reached
	// its nominal end: the result covers only the traffic observed up
	// to the flush frontier, so its verdicts are provisional (the
	// shutdown report of a live deployment, not a completed window).
	Partial bool
}

// WindowedDetector drives continuous detection over a record stream.
// Not safe for concurrent use; feed it from one goroutine (the sharded
// store underneath accepts concurrent Add, but window bookkeeping is
// single-writer by design — one boundary decision per record).
type WindowedDetector struct {
	cfg       Config
	emit      func(*Result) error
	store     *flow.ShardedExtractor
	detectors []core.Detector
	paneDur   time.Duration
	k         int // panes per window (1 = tumbling)

	started  bool
	origin   time.Time
	paneIdx  int       // index of the open pane since origin
	frontier time.Time // latest start time seen (or AdvanceTo watermark)
	recent   []*flow.Pane
	emitted  int
	dropped  int
	flushing bool // inside Flush: mark windows sealed early as Partial
}

// New creates a windowed detector. emit receives each sealed window's
// result in order; a non-nil error from emit aborts the triggering Add,
// AdvanceTo, or Flush call.
func New(cfg Config, emit func(*Result) error) (*WindowedDetector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	paneDur := cfg.Window
	k := 1
	if cfg.Slide > 0 && cfg.Slide < cfg.Window {
		paneDur = cfg.Slide
		k = int(cfg.Window / cfg.Slide)
	}
	store := flow.NewShardedExtractorSkew(flow.FeatureOptions{
		Hosts:        cfg.Internal,
		NewPeerGrace: cfg.Core.NewPeerGrace,
	}, cfg.Shards, cfg.MaxSkew).Metrics(cfg.Core.Metrics)
	store.CarryFirstSeen(cfg.CarryFirstSeen)
	detectors := cfg.Detectors
	if len(detectors) == 0 {
		pd, err := core.NewPaperDetector(cfg.Core)
		if err != nil {
			return nil, err
		}
		detectors = []core.Detector{pd}
	}
	d := &WindowedDetector{
		cfg:       cfg,
		emit:      emit,
		store:     store,
		detectors: detectors,
		paneDur:   paneDur,
		k:         k,
	}
	cfg.Core.Metrics.Gauge("engine/shards").Set(int64(store.Shards()))
	return d, nil
}

// Store exposes the underlying sharded feature store (live features of
// the open window — e.g. for a metrics endpoint between boundaries).
func (d *WindowedDetector) Store() *flow.ShardedExtractor { return d.store }

// Config returns the configuration the detector was created with (with
// Validate already applied). Checkpointing uses it to fingerprint the
// snapshot so a restore into a differently shaped engine fails loudly.
func (d *WindowedDetector) Config() Config { return d.cfg }

// Windows returns how many window results have been emitted.
func (d *WindowedDetector) Windows() int { return d.emitted }

// Dropped returns how many records were dropped for arriving beyond
// MaxSkew, in either error mode.
func (d *WindowedDetector) Dropped() int { return d.dropped }

func (d *WindowedDetector) paneStart() time.Time {
	return d.origin.Add(time.Duration(d.paneIdx) * d.paneDur)
}

func (d *WindowedDetector) paneEnd() time.Time {
	return d.origin.Add(time.Duration(d.paneIdx+1) * d.paneDur)
}

// Add folds one record into the open window, sealing and detecting any
// windows the record's start time proves complete first. Records more
// than MaxSkew behind the frontier are dropped: with ErrLateRecord, or
// silently counted when cfg.DropLate is set. Detection and emit errors
// abort the call either way.
func (d *WindowedDetector) Add(r *flow.Record) error {
	if !d.started {
		d.origin = d.cfg.Origin
		if d.origin.IsZero() {
			d.origin = r.Start
		}
		d.started = true
		d.frontier = r.Start
		if r.Start.Before(d.origin) {
			return fmt.Errorf("engine: record at %v precedes the window origin %v", r.Start, d.origin)
		}
		d.paneIdx = int(r.Start.Sub(d.origin) / d.paneDur)
	}
	if r.Start.After(d.frontier) {
		d.frontier = r.Start
	}
	if err := d.advance(d.frontier.Add(-d.cfg.MaxSkew)); err != nil {
		return err
	}
	if err := d.store.Add(r); err != nil {
		d.dropped++
		d.cfg.Core.Metrics.Counter("engine/drops").Add(1)
		if d.cfg.DropLate {
			return nil
		}
		return fmt.Errorf("%w: %v", ErrLateRecord, err)
	}
	d.cfg.Core.Metrics.Counter("engine/records").Add(1)
	return nil
}

// AdvanceTo declares that no record with a start time before t will
// arrive (stream punctuation: an idle-feed heartbeat, or the known end
// of a batch of traffic), sealing and detecting every window that ends
// at or before t. Unlike record-driven sealing it does not wait out
// MaxSkew — the caller is asserting completeness.
func (d *WindowedDetector) AdvanceTo(t time.Time) error {
	if !d.started {
		return nil
	}
	if t.After(d.frontier) {
		d.frontier = t
	}
	return d.advance(t)
}

// Flush seals the open partial window at the end of the feed, emitting
// its result. The window keeps its nominal bounds; the feed simply
// ended inside it. A window whose nominal end lies past the flush
// frontier is emitted with Result.Partial set — it covers only the
// traffic the feed delivered before stopping.
func (d *WindowedDetector) Flush() error {
	if !d.started {
		return nil
	}
	d.flushing = true
	defer func() { d.flushing = false }()
	if err := d.advance(d.frontier); err != nil {
		return err
	}
	if d.store.Hosts() == 0 && d.store.Pending() == 0 {
		return nil
	}
	return d.sealPane()
}

// advance seals every pane whose end is at or before the watermark.
func (d *WindowedDetector) advance(watermark time.Time) error {
	for d.paneEnd().Compare(watermark) <= 0 {
		if d.storeIdle() && d.ringEmpty() {
			// Fast-forward a silent stretch: every skipped pane is empty
			// and no trailing pane holds data, so no window in between
			// could emit. Jump straight to the pane containing the
			// watermark (a watermark exactly on a boundary lands the
			// cursor on the pane opening there).
			idx := int(watermark.Sub(d.origin) / d.paneDur)
			if idx > d.paneIdx {
				d.paneIdx = idx
				d.recent = d.recent[:0]
			}
			if d.paneEnd().After(watermark) {
				return nil
			}
		}
		if err := d.sealPane(); err != nil {
			return err
		}
	}
	return nil
}

func (d *WindowedDetector) storeIdle() bool {
	return d.store.Hosts() == 0 && d.store.Pending() == 0
}

func (d *WindowedDetector) ringEmpty() bool {
	for _, p := range d.recent {
		if p != nil && p.Hosts() > 0 {
			return false
		}
	}
	return true
}

// sealPane closes the open pane: flushes its buffered records, detaches
// its feature state shard by shard, advances the pane cursor, and — if
// the pane completes a detection window — merges, detects, and emits.
func (d *WindowedDetector) sealPane() error {
	reg := d.cfg.Core.Metrics
	w := flow.Window{From: d.paneStart(), To: d.paneEnd()}
	t := reg.StartStage("engine/seal")
	d.store.ReleaseBefore(w.To)
	pane := d.store.TakePane(w)
	t.Stop()
	reg.Counter("engine/panes").Add(1)
	sealedIdx := d.paneIdx
	d.paneIdx++

	if d.k == 1 {
		if pane.Hosts() == 0 {
			reg.Counter("engine/windows/empty").Add(1)
			return nil
		}
		return d.detect(pane.FeatureSet(), w, sealedIdx)
	}

	// Sliding: the sealed pane completes the window that started k-1
	// panes earlier (once that many exist).
	d.recent = append(d.recent, pane)
	if len(d.recent) > d.k {
		d.recent = d.recent[1:]
	}
	if sealedIdx < d.k-1 {
		return nil
	}
	window := flow.Window{From: w.To.Add(-d.cfg.Window), To: w.To}
	return d.emitMerged(window, sealedIdx-d.k+1)
}

// emitMerged merges the trailing panes into one window and detects.
func (d *WindowedDetector) emitMerged(window flow.Window, index int) error {
	reg := d.cfg.Core.Metrics
	t := reg.StartStage("engine/merge")
	merged := flow.MergePanes(d.cfg.Core.NewPeerGrace, d.recent...)
	t.Stop()
	if merged.Hosts() == 0 {
		reg.Counter("engine/windows/empty").Add(1)
		return nil
	}
	// Re-bound to the nominal window, keeping the contact sets the merge
	// already assembled (the community detector reads them).
	src := flow.NewFeatureSet(merged.Features(), window).WithContacts(merged.Contacts())
	return d.detect(src, window, index)
}

// detect runs every configured detector over one sealed window and
// emits the result.
func (d *WindowedDetector) detect(src *flow.FeatureSet, w flow.Window, index int) error {
	reg := d.cfg.Core.Metrics
	t := reg.StartStage("engine/detect")
	detections := make([]*core.Detection, 0, len(d.detectors))
	var paper *core.Result
	for _, det := range d.detectors {
		dt := t.Child(det.Name())
		detn, err := det.Detect(src)
		dt.Stop()
		if err != nil {
			t.Stop()
			return fmt.Errorf("engine: window %d [%v, %v): %w", index, w.From, w.To, err)
		}
		detections = append(detections, detn)
		if paper == nil && detn.Paper != nil {
			paper = detn.Paper
		}
		reg.Gauge("engine/suspects/" + detn.Detector).Set(int64(len(detn.Suspects)))
	}
	t.Stop()
	records := 0
	for _, f := range src.Features() {
		records += f.Flows
	}
	result := &Result{
		Window:     w,
		Index:      index,
		Hosts:      src.Hosts(),
		Records:    records,
		Detection:  paper,
		Detections: detections,
		Partial:    d.flushing && w.To.After(d.frontier),
	}
	d.emitted++
	reg.Counter("engine/windows").Add(1)
	reg.Gauge("engine/window_index").Set(int64(index))
	reg.Gauge("engine/window_hosts").Set(int64(result.Hosts))
	suspects := len(detections[0].Suspects)
	if paper != nil {
		suspects = len(paper.Suspects)
	}
	reg.Gauge("engine/window_suspects").Set(int64(suspects))
	if d.emit == nil {
		return nil
	}
	return d.emit(result)
}
