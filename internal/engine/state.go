package engine

import (
	"fmt"
	"time"

	"plotters/internal/flow"
)

// State is a complete snapshot of a WindowedDetector's dynamic state:
// the window bookkeeping (origin, pane cursor, frontier), the sliding-
// window pane ring, the emitted/dropped counters, and the sharded
// feature store underneath. Together with the records appended to a
// write-ahead log since the snapshot, it is everything a restarted
// process needs to continue detection bit-identically (see
// internal/checkpoint). Configuration is not part of the state — the
// restoring caller constructs the engine with the same Config, and the
// checkpoint layer pins that equality in its metadata.
type State struct {
	Started  bool
	Origin   time.Time
	Frontier time.Time
	PaneIdx  int
	Emitted  int
	Dropped  int
	Store    *flow.ShardedState
	Recent   []*flow.PaneState // sliding-window ring, oldest first
}

// State detaches a deep snapshot of the detector. The detector is
// single-writer; call State from the same goroutine that calls Add (or
// while ingest is quiesced), exactly like any other engine method.
func (d *WindowedDetector) State() *State {
	st := &State{
		Started:  d.started,
		Origin:   d.origin,
		Frontier: d.frontier,
		PaneIdx:  d.paneIdx,
		Emitted:  d.emitted,
		Dropped:  d.dropped,
		Store:    d.store.State(),
	}
	for _, p := range d.recent {
		if p == nil {
			st.Recent = append(st.Recent, nil)
			continue
		}
		st.Recent = append(st.Recent, p.State())
	}
	return st
}

// RestoreState replaces a freshly created detector's dynamic state with
// a snapshot. The detector must have been built with the same Config as
// the snapshotted one (window geometry, skew, shard count, grace —
// internal/checkpoint verifies this from its metadata) and must not
// have ingested any records yet.
func (d *WindowedDetector) RestoreState(st *State) error {
	if d.started {
		return fmt.Errorf("engine: RestoreState on a detector that has already started")
	}
	if len(st.Recent) > d.k {
		return fmt.Errorf("engine: snapshot carries %d trailing panes, window/slide geometry allows %d",
			len(st.Recent), d.k)
	}
	if st.Store == nil {
		return fmt.Errorf("engine: snapshot has no feature-store state")
	}
	if err := d.store.RestoreState(st.Store); err != nil {
		return err
	}
	d.started = st.Started
	d.origin = st.Origin
	d.frontier = st.Frontier
	d.paneIdx = st.PaneIdx
	d.emitted = st.Emitted
	d.dropped = st.Dropped
	d.recent = d.recent[:0]
	for _, ps := range st.Recent {
		if ps == nil {
			d.recent = append(d.recent, nil)
			continue
		}
		d.recent = append(d.recent, flow.NewPaneFromState(ps))
	}
	return nil
}
