package engine

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"plotters/internal/flow"
)

// windowSummary is the comparable essence of one emitted window for
// resume-equivalence checks: everything the operator sees, stage
// survivors and thresholds included.
type windowSummary struct {
	Index      int
	Window     string
	Hosts      int
	Records    int
	Partial    bool
	Reduction  []flow.IP
	Volume     []flow.IP
	Churn      []flow.IP
	Suspects   []flow.IP
	Thresholds [4]float64
}

func summarize(res *Result) windowSummary {
	det := res.Detection
	return windowSummary{
		Index:     res.Index,
		Window:    res.Window.String(),
		Hosts:     res.Hosts,
		Records:   res.Records,
		Partial:   res.Partial,
		Reduction: det.Reduction.Kept.Sorted(),
		Volume:    det.Volume.Kept.Sorted(),
		Churn:     det.Churn.Kept.Sorted(),
		Suspects:  det.Suspects.Sorted(),
		Thresholds: [4]float64{
			det.Reduction.Threshold, det.Volume.Threshold,
			det.Churn.Threshold, det.HM.Threshold,
		},
	}
}

func collectSummaries(out *[]windowSummary) func(*Result) error {
	return func(res *Result) error {
		*out = append(*out, summarize(res))
		return nil
	}
}

// resumeConfig exercises the checkpointing-relevant engine features:
// skew (pending heaps), sharding, and carried first-seen anchors.
func resumeConfig(window, slide time.Duration) Config {
	return Config{
		Window:         window,
		Slide:          slide,
		Shards:         3,
		MaxSkew:        2 * time.Minute,
		DropLate:       true,
		CarryFirstSeen: true,
		Core:           testConfig(),
	}
}

// Snapshotting a running detector mid-stream and restoring into a fresh
// one must continue the window sequence exactly where the original
// would have: same indices, same bounds, same per-stage survivors and
// thresholds. This is the in-memory core of the crash-recovery
// guarantee (internal/checkpoint adds the bytes and the WAL replay).
func TestEngineStateResumeEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name          string
		window, slide time.Duration
	}{
		{"tumbling", time.Hour, 0},
		{"sliding", time.Hour, 20 * time.Minute},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			base := baseTime()
			records := synthStream(rng, base, 5*time.Hour)

			var uninterrupted []windowSummary
			ref, err := New(resumeConfig(tc.window, tc.slide), collectSummaries(&uninterrupted))
			if err != nil {
				t.Fatal(err)
			}
			for i := range records {
				if err := ref.Add(&records[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := ref.Flush(); err != nil {
				t.Fatal(err)
			}

			for _, cut := range []int{1, len(records) / 3, len(records) / 2, len(records) - 1} {
				var before []windowSummary
				first, err := New(resumeConfig(tc.window, tc.slide), collectSummaries(&before))
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < cut; i++ {
					if err := first.Add(&records[i]); err != nil {
						t.Fatal(err)
					}
				}
				st := first.State()

				var after []windowSummary
				resumed, err := New(resumeConfig(tc.window, tc.slide), collectSummaries(&after))
				if err != nil {
					t.Fatal(err)
				}
				if err := resumed.RestoreState(st); err != nil {
					t.Fatal(err)
				}
				if resumed.Windows() != first.Windows() || resumed.Dropped() != first.Dropped() {
					t.Fatalf("cut %d: restored counters differ: windows %d/%d dropped %d/%d",
						cut, resumed.Windows(), first.Windows(), resumed.Dropped(), first.Dropped())
				}
				for i := cut; i < len(records); i++ {
					if err := resumed.Add(&records[i]); err != nil {
						t.Fatal(err)
					}
				}
				if err := resumed.Flush(); err != nil {
					t.Fatal(err)
				}

				combined := append(append([]windowSummary(nil), before...), after...)
				if !reflect.DeepEqual(combined, uninterrupted) {
					t.Fatalf("cut %d: resumed window sequence diverged:\nresumed       %+v\nuninterrupted %+v",
						cut, combined, uninterrupted)
				}
			}
		})
	}
}

// RestoreState must reject a detector that already ingested records and
// a snapshot whose pane ring does not fit the window geometry.
func TestEngineRestoreStateRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	records := synthStream(rng, baseTime(), time.Hour)
	d, err := New(resumeConfig(time.Hour, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Add(&records[0]); err != nil {
		t.Fatal(err)
	}
	if err := d.RestoreState(d.State()); err == nil {
		t.Fatal("RestoreState on a started detector did not fail")
	}

	fresh, err := New(resumeConfig(time.Hour, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := &State{
		Store:  flow.NewShardedExtractorSkew(flow.FeatureOptions{}, 3, 0).State(),
		Recent: make([]*flow.PaneState, 2), // tumbling allows at most 1
	}
	if err := fresh.RestoreState(st); err == nil {
		t.Fatal("oversized pane ring did not fail")
	}
	if err := fresh.RestoreState(&State{}); err == nil {
		t.Fatal("snapshot without store state did not fail")
	}
}

// Flush must mark a window cut short by the end of the feed as Partial,
// and leave windows whose nominal end the frontier already passed
// unmarked.
func TestFlushMarksPartialWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	base := baseTime()
	records := synthStream(rng, base, 90*time.Minute) // 1.5 windows

	var got []windowSummary
	d, err := New(resumeConfig(time.Hour, 0), collectSummaries(&got))
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if err := d.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("expected 2 windows, got %d", len(got))
	}
	if got[0].Partial {
		t.Error("completed window 0 marked partial")
	}
	if !got[1].Partial {
		t.Error("flushed half-window not marked partial")
	}
}
