package stats

import "math"

// Accumulator maintains running count, mean, min, max, and variance of a
// stream of observations using Welford's algorithm. It is used by the
// per-host feature extractors, which see each host's flows as a stream.
//
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations added.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean, or 0 if no observations were added.
func (a *Accumulator) Mean() float64 { return a.mean }

// Sum returns the running total.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// Min returns the smallest observation, or 0 if none were added.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 if none were added.
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance, or 0 for n < 2.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Merge folds another accumulator's observations into a, as if every
// observation added to other had been added to a (Chan et al. parallel
// variance combination).
func (a *Accumulator) Merge(other *Accumulator) {
	if other.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *other
		return
	}
	if other.min < a.min {
		a.min = other.min
	}
	if other.max > a.max {
		a.max = other.max
	}
	n := a.n + other.n
	delta := other.mean - a.mean
	a.mean += delta * float64(other.n) / float64(n)
	a.m2 += other.m2 + delta*delta*float64(a.n)*float64(other.n)/float64(n)
	a.n = n
}

// Counter counts occurrences of two-outcome trials (e.g. failed vs.
// successful connections) and reports the failure rate.
//
// The zero value is ready to use.
type Counter struct {
	hits  int
	total int
}

// Observe records one trial; hit marks the counted outcome.
func (c *Counter) Observe(hit bool) {
	c.total++
	if hit {
		c.hits++
	}
}

// Hits returns the number of counted outcomes.
func (c *Counter) Hits() int { return c.hits }

// Total returns the number of trials.
func (c *Counter) Total() int { return c.total }

// Rate returns hits/total, or 0 when no trials were observed.
func (c *Counter) Rate() float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.total)
}
