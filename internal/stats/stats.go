// Package stats provides the descriptive statistics used throughout the
// detection pipeline: quantiles, medians, inter-quartile ranges, empirical
// CDFs, and running accumulators.
//
// The pipeline's thresholds are all percentiles of observed per-host
// features (the paper sets τ_vol and τ_churn to percentiles of the host
// population, and τ_hm to a percentile of cluster diameters), so quantile
// computation is on the hot path of every test.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a value from an
// empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7 estimator, the default in
// R and NumPy). The input need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// QuantileSorted is like Quantile but requires xs to already be sorted
// ascending, avoiding the copy and sort.
func QuantileSorted(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	return quantileSorted(xs, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs.
func Percentile(xs []float64, p float64) (float64, error) {
	return Quantile(xs, p/100)
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// IQR returns the inter-quartile range (Q3 - Q1) of xs. It is the spread
// measure in the Freedman–Diaconis bin-width rule used by the θ_hm test.
func IQR(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	q1 := quantileSorted(sorted, 0.25)
	q3 := quantileSorted(sorted, 0.75)
	return q3 - q1, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance of xs. A single-element
// sample has variance 0.
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Summary bundles the descriptive statistics of one sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	StdDev float64
	Q1     float64
	Q3     float64
}

// Summarize computes a Summary of xs in one pass over a sorted copy.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	mean, _ := Mean(sorted)
	sd, _ := StdDev(sorted)
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Median: quantileSorted(sorted, 0.5),
		StdDev: sd,
		Q1:     quantileSorted(sorted, 0.25),
		Q3:     quantileSorted(sorted, 0.75),
	}, nil
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g mean=%.4g q3=%.4g max=%.4g sd=%.4g",
		s.N, s.Min, s.Q1, s.Median, s.Mean, s.Q3, s.Max, s.StdDev)
}
