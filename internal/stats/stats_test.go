package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestQuantileBasic(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"median odd", []float64{3, 1, 2}, 0.5, 2},
		{"median even", []float64{4, 1, 3, 2}, 0.5, 2.5},
		{"min", []float64{5, 9, 1}, 0, 1},
		{"max", []float64{5, 9, 1}, 1, 9},
		{"single", []float64{7}, 0.3, 7},
		{"q1 interpolated", []float64{1, 2, 3, 4}, 0.25, 1.75},
		{"q3 interpolated", []float64{1, 2, 3, 4}, 0.75, 3.25},
		{"constant sample", []float64{2, 2, 2, 2}, 0.9, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Quantile(tt.xs, tt.q)
			if err != nil {
				t.Fatalf("Quantile(%v, %v) error: %v", tt.xs, tt.q, err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Quantile(%v, %v) = %v, want %v", tt.xs, tt.q, got, tt.want)
			}
		})
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("empty input: got %v, want ErrEmpty", err)
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Quantile([]float64{1}, q); err == nil {
			t.Errorf("Quantile(q=%v): expected error", q)
		}
	}
	if _, err := QuantileSorted(nil, 0.5); err != ErrEmpty {
		t.Errorf("QuantileSorted empty: got %v, want ErrEmpty", err)
	}
	if _, err := QuantileSorted([]float64{1}, 2); err == nil {
		t.Error("QuantileSorted(q=2): expected error")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

// Property: a quantile is always within [min, max], and quantiles are
// monotone in q.
func TestQuantilePropertyBoundsAndMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		va, err1 := Quantile(xs, a)
		vb, err2 := Quantile(xs, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return va >= lo-1e-9 && vb <= hi+1e-9 && va <= vb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: IQR is non-negative and at most the full range.
func TestIQRProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		iqr, err := IQR(xs)
		if err != nil {
			return false
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		return iqr >= -1e-12 && iqr <= hi-lo+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// sanitize maps arbitrary quick-generated floats into finite values.
func sanitize(raw []float64) []float64 {
	out := raw[:0:0]
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		// Clamp magnitude so intermediate arithmetic stays finite.
		if x > 1e100 {
			x = 1e100
		}
		if x < -1e100 {
			x = -1e100
		}
		out = append(out, x)
	}
	return out
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Errorf("Mean = %v, %v; want 5", m, err)
	}
	v, err := Variance(xs)
	if err != nil || !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, %v; want %v", v, err, 32.0/7.0)
	}
	sd, err := StdDev(xs)
	if err != nil || !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v, %v", sd, err)
	}
	if v, err := Variance([]float64{42}); err != nil || v != 0 {
		t.Errorf("Variance single = %v, %v; want 0", v, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Variance(nil); err != ErrEmpty {
		t.Errorf("Variance(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := StdDev(nil); err != ErrEmpty {
		t.Errorf("StdDev(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if m, _ := Min(xs); m != -1 {
		t.Errorf("Min = %v, want -1", m)
	}
	if m, _ := Max(xs); m != 7 {
		t.Errorf("Max = %v, want 7", m)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v", err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v, %v; want 2, 4", s.Q1, s.Q3)
	}
	if s.String() == "" {
		t.Error("String() should be non-empty")
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v", err)
	}
}

func TestPercentileMatchesQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	p, err1 := Percentile(xs, 50)
	q, err2 := Quantile(xs, 0.5)
	if err1 != nil || err2 != nil || p != q {
		t.Errorf("Percentile(50) = %v, Quantile(0.5) = %v", p, q)
	}
	m, err := Median(xs)
	if err != nil || m != q {
		t.Errorf("Median = %v, want %v", m, q)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d, want 4", e.N())
	}
	pts := e.Points()
	if len(pts) != 3 { // 1, 2 (collapsed), 3
		t.Fatalf("Points len = %d, want 3: %v", len(pts), pts)
	}
	if pts[1].X != 2 || !almostEqual(pts[1].F, 0.75, 1e-12) {
		t.Errorf("Points[1] = %+v, want {2 0.75}", pts[1])
	}
	if pts[2].F != 1 {
		t.Errorf("last point F = %v, want 1", pts[2].F)
	}
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Errorf("NewECDF(nil) err = %v", err)
	}
}

func TestECDFInverse(t *testing.T) {
	e, err := NewECDF([]float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {-1, 10}, {0.25, 20}, {0.5, 30}, {0.99, 40}, {1, 40}, {2, 40},
	}
	for _, tt := range tests {
		if got := e.Inverse(tt.p); got != tt.want {
			t.Errorf("Inverse(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

// Property: ECDF is monotone non-decreasing and At(max) == 1.
func TestECDFPropertyMonotone(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		if a > b {
			a, b = b, a
		}
		hi, _ := Max(xs)
		return e.At(a) <= e.At(b) && e.At(hi) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestECDFSampled(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	pts := e.Sampled(11)
	if len(pts) != 11 {
		t.Fatalf("Sampled(11) len = %d", len(pts))
	}
	if pts[0].X != 0 || pts[10].X != 999 {
		t.Errorf("endpoints = %v, %v", pts[0], pts[10])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].F < pts[i-1].F {
			t.Errorf("sampled points not monotone at %d", i)
		}
	}
	// n larger than the number of breakpoints returns all of them.
	if got := e.Sampled(5000); len(got) != 1000 {
		t.Errorf("Sampled(5000) len = %d, want 1000", len(got))
	}
	if got := e.Sampled(0); len(got) != 1000 {
		t.Errorf("Sampled(0) len = %d, want all points", len(got))
	}
}

func TestFormatCDF(t *testing.T) {
	s := FormatCDF("test", []CDFPoint{{X: 1, F: 0.5}, {X: 2, F: 1}})
	if s == "" || s[0] != '#' {
		t.Errorf("FormatCDF output malformed: %q", s)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	var acc Accumulator
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 3
		acc.Add(xs[i])
	}
	wantMean, _ := Mean(xs)
	wantVar, _ := Variance(xs)
	wantMin, _ := Min(xs)
	wantMax, _ := Max(xs)
	if !almostEqual(acc.Mean(), wantMean, 1e-9) {
		t.Errorf("Mean = %v, want %v", acc.Mean(), wantMean)
	}
	if !almostEqual(acc.Variance(), wantVar, 1e-9) {
		t.Errorf("Variance = %v, want %v", acc.Variance(), wantVar)
	}
	if acc.Min() != wantMin || acc.Max() != wantMax {
		t.Errorf("Min/Max = %v/%v, want %v/%v", acc.Min(), acc.Max(), wantMin, wantMax)
	}
	if acc.N() != 500 {
		t.Errorf("N = %d", acc.N())
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if !almostEqual(acc.Sum(), sum, 1e-7) {
		t.Errorf("Sum = %v, want %v", acc.Sum(), sum)
	}
}

func TestAccumulatorZeroValue(t *testing.T) {
	var acc Accumulator
	if acc.N() != 0 || acc.Mean() != 0 || acc.Variance() != 0 || acc.StdDev() != 0 {
		t.Errorf("zero accumulator not zero: %+v", acc)
	}
	acc.Add(5)
	if acc.Variance() != 0 {
		t.Errorf("variance of one sample = %v, want 0", acc.Variance())
	}
	if acc.Min() != 5 || acc.Max() != 5 {
		t.Errorf("min/max after one add = %v/%v", acc.Min(), acc.Max())
	}
}

func TestAccumulatorMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var all, left, right Accumulator
	var xs []float64
	for i := 0; i < 300; i++ {
		x := rng.ExpFloat64() * 100
		xs = append(xs, x)
		all.Add(x)
		if i < 120 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	merged := left
	merged.Merge(&right)
	if merged.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", merged.N(), all.N())
	}
	if !almostEqual(merged.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged Mean = %v, want %v", merged.Mean(), all.Mean())
	}
	if !almostEqual(merged.Variance(), all.Variance(), 1e-6) {
		t.Errorf("merged Variance = %v, want %v", merged.Variance(), all.Variance())
	}
	if merged.Min() != all.Min() || merged.Max() != all.Max() {
		t.Errorf("merged Min/Max mismatch")
	}

	// Merging into/from empty.
	var empty Accumulator
	cp := all
	cp.Merge(&empty)
	if cp.N() != all.N() || cp.Mean() != all.Mean() {
		t.Error("merge with empty changed state")
	}
	var empty2 Accumulator
	empty2.Merge(&all)
	if empty2.N() != all.N() || empty2.Mean() != all.Mean() {
		t.Error("merge into empty did not copy state")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Rate() != 0 {
		t.Errorf("zero counter rate = %v", c.Rate())
	}
	c.Observe(true)
	c.Observe(false)
	c.Observe(true)
	c.Observe(false)
	if c.Hits() != 2 || c.Total() != 4 || c.Rate() != 0.5 {
		t.Errorf("counter = %d/%d rate %v", c.Hits(), c.Total(), c.Rate())
	}
}

func TestQuantileSortedAgreesWithQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		a, err1 := Quantile(xs, q)
		b, err2 := QuantileSorted(sorted, q)
		if err1 != nil || err2 != nil || a != b {
			t.Errorf("q=%v: Quantile=%v QuantileSorted=%v", q, a, b)
		}
	}
}
