package stats

import (
	"fmt"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. The evaluation figures in the paper (Figures 1, 5, 10) are all
// per-host feature CDFs; ECDF produces the plotted series.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// At returns F(x) = P(X <= x), the fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want the count of elements <= x, i.e. the first index with
	// sorted[i] > x.
	idx := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(idx) / float64(len(e.sorted))
}

// Inverse returns the smallest sample value v such that F(v) >= p, for
// p in (0, 1]. Inverse(0) returns the sample minimum.
func (e *ECDF) Inverse(p float64) float64 {
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(p * float64(len(e.sorted)))
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Points returns the step-function breakpoints (x, F(x)) of the ECDF with
// duplicates collapsed, suitable for plotting or textual dumps.
func (e *ECDF) Points() []CDFPoint {
	pts := make([]CDFPoint, 0, len(e.sorted))
	n := float64(len(e.sorted))
	for i, x := range e.sorted {
		if i+1 < len(e.sorted) && e.sorted[i+1] == x {
			continue // emit only the last occurrence of a tied value
		}
		pts = append(pts, CDFPoint{X: x, F: float64(i+1) / n})
	}
	return pts
}

// Sampled returns n evenly spaced (in probability) points of the ECDF,
// always including the first and last breakpoints. It keeps figure dumps
// small for large samples.
func (e *ECDF) Sampled(n int) []CDFPoint {
	pts := e.Points()
	if n <= 0 || len(pts) <= n {
		return pts
	}
	out := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(pts) - 1) / (n - 1)
		out = append(out, pts[idx])
	}
	return out
}

// CDFPoint is one breakpoint of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	F float64 // cumulative probability at X
}

// FormatCDF renders points as a two-column table with a header, the
// format used by cmd/experiments for CDF figures.
func FormatCDF(name string, pts []CDFPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# x\tF(x)\n", name)
	for _, p := range pts {
		fmt.Fprintf(&b, "%.6g\t%.6f\n", p.X, p.F)
	}
	return b.String()
}
