package plotters_test

import (
	"fmt"
	"time"

	"plotters"
)

// ExampleExtractFeatures shows the per-host features the detection tests
// are built from.
func ExampleExtractFeatures() {
	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	host, _ := plotters.ParseIP("128.2.0.1")
	peer, _ := plotters.ParseIP("66.35.250.150")
	var records []plotters.Record
	for i := 0; i < 4; i++ {
		state := plotters.StateEstablished
		if i == 3 {
			state = plotters.StateFailed
		}
		records = append(records, plotters.Record{
			Src: host, Dst: peer, SrcPort: 40000, DstPort: 80, Proto: plotters.TCP,
			Start: start.Add(time.Duration(i) * time.Minute), End: start.Add(time.Duration(i)*time.Minute + time.Second),
			SrcPkts: 3, DstPkts: 3, SrcBytes: 500, DstBytes: 4000,
			State: state,
		})
	}
	feats := plotters.ExtractFeatures(records, plotters.FeatureOptions{})
	f := feats[host]
	fmt.Printf("flows=%d avgBytes=%.0f failedRate=%.2f peers=%d interstitials=%d\n",
		f.Flows, f.AvgBytesPerFlow(), f.FailedRate(), f.Peers, len(f.Interstitials))
	// Output:
	// flows=4 avgBytes=500 failedRate=0.25 peers=1 interstitials=3
}

// ExampleNewAssembler assembles raw packets into an Argus-style
// bi-directional flow record.
func ExampleNewAssembler() {
	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	cli, _ := plotters.ParseIP("128.2.0.1")
	srv, _ := plotters.ParseIP("66.35.250.150")

	var got []plotters.Record
	asm, _ := plotters.NewAssembler(plotters.DefaultAssemblerConfig(), func(r plotters.Record) {
		got = append(got, r)
	})
	packets := []plotters.Packet{
		{Time: start, Src: cli, Dst: srv, SrcPort: 40000, DstPort: 80, Proto: plotters.TCP, Bytes: 60, SYN: true},
		{Time: start.Add(10 * time.Millisecond), Src: srv, Dst: cli, SrcPort: 80, DstPort: 40000, Proto: plotters.TCP, Bytes: 60, SYN: true, ACK: true},
		{Time: start.Add(20 * time.Millisecond), Src: cli, Dst: srv, SrcPort: 40000, DstPort: 80, Proto: plotters.TCP, Bytes: 540, ACK: true, Payload: []byte("GET /")},
		{Time: start.Add(30 * time.Millisecond), Src: srv, Dst: cli, SrcPort: 80, DstPort: 40000, Proto: plotters.TCP, Bytes: 1500, ACK: true},
	}
	for _, p := range packets {
		if err := asm.Observe(p); err != nil {
			fmt.Println("observe:", err)
			return
		}
	}
	asm.Flush()
	r := got[0]
	fmt.Printf("%s -> %s %s up=%dB down=%dB payload=%q\n",
		r.Src, r.Dst, r.State, r.SrcBytes, r.DstBytes, r.Payload)
	// Output:
	// 128.2.0.1 -> 66.35.250.150 established up=600B down=1560B payload="GET /"
}

// ExampleLabelTraders applies the paper's §III ground-truth payload
// rules.
func ExampleLabelTraders() {
	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	host, _ := plotters.ParseIP("128.2.0.1")
	peer, _ := plotters.ParseIP("87.4.11.2")
	records := []plotters.Record{{
		Src: host, Dst: peer, SrcPort: 6346, DstPort: 6346, Proto: plotters.TCP,
		Start: start, End: start.Add(time.Second),
		SrcPkts: 1, DstPkts: 1, SrcBytes: 100, DstBytes: 100,
		State:   plotters.StateEstablished,
		Payload: []byte("GNUTELLA CONNECT/0.6"),
	}}
	traders := plotters.LabelTraders(records, plotters.IsInternal)
	fmt.Println("trader:", traders[host])
	// Output:
	// trader: true
}

// ExampleRequiredChurnFactor quantifies a §VI evasion cost: how many
// more new peers a bot must contact to masquerade its churn.
func ExampleRequiredChurnFactor() {
	// A bot contacted 100 peers, 20 of them new; to look like a Trader
	// with 90% new peers it must multiply its new contacts by:
	factor := plotters.RequiredChurnFactor(20, 100, 0.9)
	fmt.Printf("%.0fx\n", factor)
	// Output:
	// 36x
}
