package plotters_test

import (
	"bytes"
	"testing"
	"time"

	"plotters"
)

// TestPublicAPIEndToEnd drives the whole library through its exported
// surface only: synthesize, serialize, reload, label, detect, score.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := plotters.DefaultDatasetConfig(11)
	cfg.Days = 1
	cfg.DayTemplate.CampusHosts = 130
	cfg.DayTemplate.Gnutella = 4
	cfg.DayTemplate.EMule = 4
	cfg.DayTemplate.BitTorrent = 6
	cfg.DayTemplate.PeerNetworkNodes = 1000
	cfg.Storm.Bots = 8
	cfg.Storm.OverlayNodes = 600
	cfg.Storm.SeedPeers = 60
	cfg.Nugache.Bots = 16
	cfg.Nugache.OverlayNodes = 400
	ds, err := plotters.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip the day through the binary codec.
	var buf bytes.Buffer
	if err := plotters.WriteTrace(&buf, ds.Days[0].Records); err != nil {
		t.Fatal(err)
	}
	records, err := plotters.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(ds.Days[0].Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(records), len(ds.Days[0].Records))
	}

	// Ground truth from payloads.
	traders := plotters.LabelTraders(records, plotters.IsInternal)
	if len(traders) == 0 {
		t.Fatal("no traders labeled")
	}

	// Overlay and detect.
	day, err := plotters.OverlayDay(ds.Days[0], ds, 3, plotters.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := day.Analysis.FindPlotters()
	if err != nil {
		t.Fatal(err)
	}
	rates := plotters.Score(res.Suspects, day.Analysis.Hosts(), day.Storm.Union(day.Nugache))
	if rates.Plotters != 24 {
		t.Errorf("plotters in truth = %d, want 24", rates.Plotters)
	}
	if rates.TP == 0 {
		t.Error("no bots detected at all")
	}
	if rates.FPR() > 0.2 {
		t.Errorf("FPR = %v, too high", rates.FPR())
	}
}

func TestPublicAPIFeatureExtraction(t *testing.T) {
	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	host, err := plotters.ParseIP("128.2.0.1")
	if err != nil {
		t.Fatal(err)
	}
	records := []plotters.Record{{
		Src: host, Dst: 99, SrcPort: 4000, DstPort: 80, Proto: plotters.TCP,
		Start: start, End: start.Add(time.Second),
		SrcPkts: 1, DstPkts: 1, SrcBytes: 500, DstBytes: 100,
		State: plotters.StateEstablished,
	}}
	feats := plotters.ExtractFeatures(records, plotters.FeatureOptions{})
	if feats[host] == nil || feats[host].AvgBytesPerFlow() != 500 {
		t.Errorf("features = %+v", feats[host])
	}
	if !plotters.IsInternal(host) {
		t.Error("128.2.0.1 should be internal")
	}
	w := plotters.CollectionWindow(start)
	if w.Duration() != 6*time.Hour {
		t.Errorf("window = %v", w.Duration())
	}
	sn, err := plotters.ParseSubnet("128.2.0.0/16")
	if err != nil || !sn.Contains(host) {
		t.Error("subnet parsing broken")
	}
}

func TestPublicAPIEvasion(t *testing.T) {
	start := time.Date(2007, time.November, 5, 0, 0, 0, 0, time.UTC)
	var records []plotters.Record
	for i := 0; i < 20; i++ {
		records = append(records, plotters.Record{
			Src: 1, Dst: 2, SrcPort: 4000, DstPort: 80, Proto: plotters.TCP,
			Start: start.Add(time.Duration(i) * time.Minute), End: start.Add(time.Duration(i)*time.Minute + time.Second),
			SrcPkts: 1, DstPkts: 1, SrcBytes: 100, DstBytes: 10,
			State: plotters.StateEstablished,
		})
	}
	inflated, err := plotters.InflateVolume(records, 2)
	if err != nil || inflated[0].SrcBytes != 200 {
		t.Errorf("InflateVolume: %v, %v", inflated[0].SrcBytes, err)
	}
	if f := plotters.RequiredVolumeFactor(100, 500); f != 5 {
		t.Errorf("RequiredVolumeFactor = %v", f)
	}
	if f := plotters.RequiredChurnFactor(10, 100, 0.9); f <= 1 {
		t.Errorf("RequiredChurnFactor = %v", f)
	}
}
