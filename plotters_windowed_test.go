// Equivalence tests for the continuous windowed engine: a detection
// window streamed through WindowedDetector must be indistinguishable
// from a batch FindPlotters run over the same records — the golden
// regression file pins the batch outcome, so the engine must reproduce
// it bit for bit.
package plotters_test

import (
	"reflect"
	"testing"

	"plotters"
)

// One window of the canonical seed-42 corpus through the windowed
// engine reproduces testdata/findplotters_golden.json exactly:
// suspects, survivor counts, and thresholds.
func TestWindowedDetectorMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus synthesis takes ~15s; skipped in -short mode")
	}
	ds := goldenDataset(t)
	cfg := plotters.DefaultConfig()
	// Overlay day 0 exactly as the evaluation suite does (suite seed 43,
	// day offset 0).
	day, err := plotters.OverlayDay(ds.Days[0], ds, 43, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := ds.Days[0].Window

	var results []*plotters.WindowResult
	eng, err := plotters.NewWindowedDetector(plotters.EngineConfig{
		Window:   w.Duration(),
		Origin:   w.From,
		Internal: plotters.IsInternal,
		Core:     cfg,
	}, func(r *plotters.WindowResult) error { results = append(results, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range day.Records {
		if err := eng.Add(&day.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.AdvanceTo(w.To); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d windows, want 1", len(results))
	}
	res := results[0]
	if res.Window != w {
		t.Errorf("window bounds = %v, want %v", res.Window, w)
	}
	internalRecords := 0
	for i := range day.Records {
		if plotters.IsInternal(day.Records[i].Src) {
			internalRecords++
		}
	}
	if res.Records != internalRecords {
		t.Errorf("window records = %d, want %d (internally initiated)", res.Records, internalRecords)
	}

	compareGolden(t, resultToGolden(day, res.Detection), loadGolden(t))

	// The engine window's features must equal the batch extraction
	// day.Analysis performed — same maps, bit for bit.
	if !reflect.DeepEqual(res.Detection.Analysis.Features(), day.Analysis.Features()) {
		t.Error("windowed features differ from batch extraction")
	}
}

// Over a multi-day corpus, the engine-backed suite must produce the
// same per-day suspect sets as independent per-day batch runs — the
// cmd/experiments equivalence: days stream through one engine, features
// are never re-extracted, and nothing about the outcome moves.
func TestSuiteEngineMatchesPerDayBatch(t *testing.T) {
	// Scale the corpus down: the equivalence needs days, not scale.
	cfg := plotters.DefaultDatasetConfig(42)
	cfg.Days = 3
	cfg.DayTemplate.CampusHosts = 100
	cfg.DayTemplate.Gnutella = 3
	cfg.DayTemplate.EMule = 3
	cfg.DayTemplate.BitTorrent = 4
	cfg.DayTemplate.PeerNetworkNodes = 800
	cfg.Storm.Bots = 6
	cfg.Storm.OverlayNodes = 500
	cfg.Storm.SeedPeers = 50
	cfg.Nugache.Bots = 15
	cfg.Nugache.OverlayNodes = 400
	ds, err := plotters.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pipe := plotters.DefaultConfig()
	pipe.MinInterstitialSamples = 20

	suite, err := plotters.NewSuite(ds, pipe, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < suite.Days(); i++ {
		de, err := suite.Day(i)
		if err != nil {
			t.Fatal(err)
		}
		engRes, err := de.Detect()
		if err != nil {
			t.Fatal(err)
		}
		// Independent batch run over the same overlaid day (same seed
		// derivation as the suite).
		batchDay, err := plotters.OverlayDay(ds.Days[i], ds, 7+int64(i)*104729, pipe)
		if err != nil {
			t.Fatal(err)
		}
		batchRes, err := batchDay.Analysis.FindPlotters()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(engRes.Suspects, batchRes.Suspects) {
			t.Errorf("day %d: suspects differ:\nengine %v\nbatch  %v",
				i, engRes.Suspects.Sorted(), batchRes.Suspects.Sorted())
		}
		if !reflect.DeepEqual(engRes.Reduction.Kept, batchRes.Reduction.Kept) ||
			!reflect.DeepEqual(engRes.Volume.Kept, batchRes.Volume.Kept) ||
			!reflect.DeepEqual(engRes.Churn.Kept, batchRes.Churn.Kept) {
			t.Errorf("day %d: intermediate stages differ", i)
		}
		if !reflect.DeepEqual(de.Analysis.Features(), batchDay.Analysis.Features()) {
			t.Errorf("day %d: features differ from batch extraction", i)
		}
	}
}
