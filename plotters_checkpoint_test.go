// Kill-and-resume golden test for the durable-state subsystem: a live
// run over the seed-42 wire corpus is killed mid-stream (the manager is
// abandoned without Flush or Close, exactly what SIGKILL leaves behind)
// and a second process recovers from the state directory and finishes
// the stream. The merged per-window outcome must be bit-identical to
// the uninterrupted run pinned in testdata/collector_golden.json —
// recovery may re-emit windows (at-least-once delivery), but every
// re-emission must match the original and nothing may drift.
package plotters_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"plotters"
)

// mergeWindows folds the window summaries from multiple process lives
// into one run, deduplicating on the window index. A window emitted
// twice (once before the kill, once re-emitted by WAL replay) must be
// identical both times — recovery re-delivers, it never rewrites.
func mergeWindows(t *testing.T, runs ...[]collectorWindow) []collectorWindow {
	t.Helper()
	byIdx := make(map[int]collectorWindow)
	for _, run := range runs {
		for _, w := range run {
			if prev, ok := byIdx[w.Index]; ok {
				if !reflect.DeepEqual(prev, w) {
					t.Fatalf("window %d re-emitted differently across the crash:\nfirst  %+v\nsecond %+v", w.Index, prev, w)
				}
				continue
			}
			byIdx[w.Index] = w
		}
	}
	merged := make([]collectorWindow, 0, len(byIdx))
	for _, w := range byIdx {
		merged = append(merged, w)
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a].Index < merged[b].Index })
	return merged
}

func TestCheckpointKillAndResumeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus synthesis takes a few seconds; skipped in -short mode")
	}
	wire, _, w, pipe := collectorCorpus(t)
	dir := t.TempDir()
	ckptAt := len(wire) / 3     // last checkpoint the first life commits
	killAt := len(wire) * 2 / 3 // records ingested when the kill lands

	// First life: ingest through the manager, checkpoint once a third
	// of the way in, keep going, then die without warning — no Flush,
	// no final Checkpoint, no Close. The WAL holds everything past the
	// snapshot.
	var life1 []collectorWindow
	eng1 := collectorEngine(t, pipe, w, &life1)
	mgr1, err := plotters.NewCheckpointManager(plotters.CheckpointConfig{
		Dir:       dir,
		SyncEvery: 256, // batch fsyncs; a same-host restart reads the page cache
	}, eng1)
	if err != nil {
		t.Fatal(err)
	}
	info, err := mgr1.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotLoaded || info.Replayed != 0 {
		t.Fatalf("cold start found state: %+v", info)
	}
	for i := 0; i < killAt; i++ {
		if err := mgr1.Add(&wire[i]); err != nil {
			t.Fatal(err)
		}
		if i == ckptAt {
			if err := mgr1.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// SIGKILL: mgr1 and eng1 are simply abandoned here.

	// Second life: a fresh engine with the same configuration recovers
	// the snapshot plus the WAL tail, then finishes the stream.
	var life2 []collectorWindow
	eng2 := collectorEngine(t, pipe, w, &life2)
	mgr2, err := plotters.NewCheckpointManager(plotters.CheckpointConfig{Dir: dir}, eng2)
	if err != nil {
		t.Fatal(err)
	}
	info, err = mgr2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !info.SnapshotLoaded {
		t.Fatal("recovery did not load the snapshot")
	}
	if want := killAt - (ckptAt + 1); info.Replayed != want {
		t.Fatalf("replayed %d WAL records, want %d", info.Replayed, want)
	}
	for i := killAt; i < len(wire); i++ {
		if err := mgr2.Add(&wire[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr2.AdvanceTo(w.To); err != nil {
		t.Fatal(err)
	}
	if err := mgr2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := mgr2.Close(); err != nil {
		t.Fatal(err)
	}

	// The merged lives must reproduce the uninterrupted loopback run
	// exactly — same windows, same hosts, same suspects.
	got := collectorGolden{WireRecords: len(wire), Windows: mergeWindows(t, life1, life2)}
	raw, err := os.ReadFile(collectorGoldenPath)
	if err != nil {
		t.Fatalf("%v (run TestCollectorLoopbackGolden with -update to create it)", err)
	}
	var want collectorGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kill-and-resume outcome differs from the uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}

	// CI uploads the final checkpoint as a build artifact so a format
	// regression leaves evidence to bisect with.
	if out := os.Getenv("CHECKPOINT_ARTIFACT_DIR"); out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{plotters.CheckpointSnapshotFile, plotters.CheckpointWALFile} {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(out, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("checkpoint artifacts copied to %s", out)
	}
}
