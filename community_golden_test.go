// Golden regression test for the community detector: the mutual-contact
// graph summary and the community suspect set on day 0 of the canonical
// seed-42 evaluation corpus are pinned in testdata/community_golden.json.
// Any change to synthesis, contact tracking, graph construction, label
// propagation, or community scoring that moves the outcome fails here
// first — and because the day runs through the multi-detector suite, the
// test also proves the ensemble path leaves the paper pipeline's pinned
// verdict (testdata/findplotters_golden.json) untouched.
//
// After an intentional behavior change, regenerate with:
//
//	go test -run TestCommunityGolden -update
package plotters_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"plotters"
)

const communityGoldenPath = "testdata/community_golden.json"

// communityGolden pins the community detector's outcome on day 0 of the
// seed-42 evaluation corpus: the mutual-contact graph summary, the
// flagged-community count, the suspect set, and the ensemble overlap
// with the paper pipeline.
type communityGolden struct {
	GraphHosts   int      `json:"graph_hosts"`
	GraphEdges   int      `json:"graph_edges"`
	Communities  int      `json:"communities"`
	Flagged      int      `json:"flagged_communities"`
	Suspects     []string `json:"suspects"`
	Union        int      `json:"ensemble_union"`
	Intersection int      `json:"ensemble_intersection"`
}

func TestCommunityGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus synthesis takes ~15s; skipped in -short mode")
	}
	ds := goldenDataset(t)
	cfg := plotters.DefaultConfig()
	pd, err := plotters.NewPaperDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := plotters.NewCommunityDetector(plotters.DefaultCommunityConfig())
	if err != nil {
		t.Fatal(err)
	}
	suite, err := plotters.NewSuiteDetectors(ds, cfg, 43, []plotters.Detector{pd, cd})
	if err != nil {
		t.Fatal(err)
	}
	day, err := suite.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	dets, err := day.Detections()
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 2 || dets[0].Detector != plotters.PaperDetectorName || dets[1].Detector != plotters.CommunityDetectorName {
		t.Fatalf("detections = %+v, want [%s, %s]", dets, plotters.PaperDetectorName, plotters.CommunityDetectorName)
	}

	// The ensemble run must reproduce the paper pipeline's pinned golden
	// outcome bit for bit: adding a second detector to the engine may not
	// perturb the first.
	compareGolden(t, resultToGolden(day, dets[0].Paper), loadGolden(t))

	rep, ok := dets[1].Details.(*plotters.CommunityReport)
	if !ok {
		t.Fatalf("community detection Details = %T, want *plotters.CommunityReport", dets[1].Details)
	}
	suspects := dets[1].Suspects.Sorted()
	strs := make([]string, len(suspects))
	for i, h := range suspects {
		strs[i] = h.String()
	}
	got := communityGolden{
		GraphHosts:   rep.GraphHosts,
		GraphEdges:   rep.GraphEdges,
		Communities:  len(rep.Communities),
		Flagged:      len(rep.Flagged),
		Suspects:     strs,
		Union:        len(plotters.UnionSuspects(dets)),
		Intersection: len(plotters.IntersectSuspects(dets)),
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(communityGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(communityGoldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", communityGoldenPath)
		return
	}

	raw, err := os.ReadFile(communityGoldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want communityGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if got.GraphHosts != want.GraphHosts || got.GraphEdges != want.GraphEdges {
		t.Errorf("graph = %d hosts / %d edges, want %d / %d",
			got.GraphHosts, got.GraphEdges, want.GraphHosts, want.GraphEdges)
	}
	if got.Communities != want.Communities || got.Flagged != want.Flagged {
		t.Errorf("communities = %d (%d flagged), want %d (%d flagged)",
			got.Communities, got.Flagged, want.Communities, want.Flagged)
	}
	if got.Union != want.Union || got.Intersection != want.Intersection {
		t.Errorf("ensemble union/intersection = %d/%d, want %d/%d",
			got.Union, got.Intersection, want.Union, want.Intersection)
	}
	if !reflect.DeepEqual(got.Suspects, want.Suspects) {
		t.Errorf("community suspect set changed:\ngot  %v\nwant %v", got.Suspects, want.Suspects)
	}
}
