// Ablation benchmarks for the design choices DESIGN.md calls out: the
// log-time axis for θ_hm histograms, the mean-pairwise cluster spread,
// the dendrogram cut fraction, and the per-test contribution to the full
// pipeline. Each bench runs the detection pipeline with one knob changed
// and reports the resulting detection/false-positive rates, so
// `go test -bench Ablation` prints a compact ablation table.
package plotters_test

import (
	"testing"

	"plotters"
)

// ablate runs the full pipeline over the shared corpus with a modified
// config and reports detection metrics.
func ablate(b *testing.B, mutate func(*plotters.Config)) {
	b.Helper()
	ds, _ := corpus(b)
	cfg := plotters.DefaultConfig()
	mutate(&cfg)
	for i := 0; i < b.N; i++ {
		var storm, nugache, fp plotters.Rates
		for d := range ds.Days {
			day, err := plotters.OverlayDay(ds.Days[d], ds, int64(900+d), cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := day.Analysis.FindPlotters()
			if err != nil {
				b.Fatal(err)
			}
			all := day.Analysis.Hosts()
			storm.Add(plotters.Score(res.Suspects, all, day.Storm))
			nugache.Add(plotters.Score(res.Suspects, all, day.Nugache))
			fp.Add(plotters.Score(res.Suspects, all, day.Storm.Union(day.Nugache)))
		}
		if i == b.N-1 {
			b.ReportMetric(storm.TPR(), "storm-tpr")
			b.ReportMetric(nugache.TPR(), "nugache-tpr")
			b.ReportMetric(fp.FPR(), "fp-rate")
		}
	}
}

// BenchmarkAblationBaseline is the calibrated default configuration.
func BenchmarkAblationBaseline(b *testing.B) {
	ablate(b, func(cfg *plotters.Config) {})
}

// BenchmarkAblationRawTimeScale disables the log-time transform: EMD is
// computed over raw-second histograms, where heavy-tail gaps swamp the
// timer structure.
func BenchmarkAblationRawTimeScale(b *testing.B) {
	ablate(b, func(cfg *plotters.Config) { cfg.RawTimeScale = true })
}

// BenchmarkAblationMaxDiameter filters clusters on the strict maximum
// pairwise distance (the paper's literal "diameter") instead of the mean.
func BenchmarkAblationMaxDiameter(b *testing.B) {
	ablate(b, func(cfg *plotters.Config) { cfg.MaxDiameter = true })
}

// BenchmarkAblationPaperCutFraction uses the paper's 5% dendrogram cut,
// which at this population scale produces very coarse clusters.
func BenchmarkAblationPaperCutFraction(b *testing.B) {
	ablate(b, func(cfg *plotters.Config) { cfg.CutFraction = 0.05 })
}

// BenchmarkAblationHM70 moves τ_hm to the paper's 70th percentile.
func BenchmarkAblationHM70(b *testing.B) {
	ablate(b, func(cfg *plotters.Config) { cfg.HMPercentile = 70 })
}

// BenchmarkAblationNoMinSamples drops the interstitial sample floor to
// the minimum, letting barely-observed hosts into the clustering.
func BenchmarkAblationNoMinSamples(b *testing.B) {
	ablate(b, func(cfg *plotters.Config) { cfg.MinInterstitialSamples = 2 })
}

// BenchmarkAblationVolumeOnly skips churn: θ_hm input is S_vol alone
// (approximated by zeroing the churn percentile so θ_churn keeps no one).
func BenchmarkAblationVolumeOnly(b *testing.B) {
	ablate(b, func(cfg *plotters.Config) { cfg.ChurnPercentile = 0 })
}

// BenchmarkAblationChurnOnly skips volume.
func BenchmarkAblationChurnOnly(b *testing.B) {
	ablate(b, func(cfg *plotters.Config) { cfg.VolPercentile = 0 })
}

// BenchmarkBaselineComparison contrasts FindPlotters with the §II
// baseline detectors (TDG, persistence, failed-connections) on the same
// corpus, reporting the Trader-flagging rate that motivates the paper:
// generic P2P identifiers cannot tell Traders and Plotters apart.
func BenchmarkBaselineComparison(b *testing.B) {
	_, suite := corpus(b)
	for i := 0; i < b.N; i++ {
		outcomes, err := suite.CompareBaselines()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, o := range outcomes {
				switch o.Name {
				case "findplotters":
					b.ReportMetric(o.TraderRate, "findplotters-trader-rate")
				case "tdg":
					b.ReportMetric(o.TraderRate, "tdg-trader-rate")
				}
			}
		}
	}
}
