module plotters

go 1.22
