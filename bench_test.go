// Benchmarks regenerating every figure in the paper's evaluation section
// (one bench per figure; Figure 4 is the FindPlotters algorithm itself,
// which every detection bench exercises). Each bench reports the figure's
// headline metrics via b.ReportMetric, so `go test -bench .` doubles as a
// compact reproduction run. The corpus is scaled down from the full
// evaluation (see cmd/experiments for paper-scale runs) but preserves the
// population ratios.
package plotters_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"plotters"
)

// benchCorpus lazily synthesizes one shared scaled-down corpus: two
// collection days plus the two honeynet traces.
var benchCorpus struct {
	once  sync.Once
	ds    *plotters.Dataset
	suite *plotters.Suite
	err   error
}

func corpus(b *testing.B) (*plotters.Dataset, *plotters.Suite) {
	b.Helper()
	benchCorpus.once.Do(func() {
		cfg := plotters.DefaultDatasetConfig(42)
		cfg.Days = 2
		cfg.DayTemplate.CampusHosts = 150
		cfg.DayTemplate.Gnutella = 5
		cfg.DayTemplate.EMule = 5
		cfg.DayTemplate.BitTorrent = 8
		cfg.DayTemplate.PeerNetworkNodes = 1200
		ds, err := plotters.GenerateDataset(cfg)
		if err != nil {
			benchCorpus.err = err
			return
		}
		suite, err := plotters.NewSuite(ds, plotters.DefaultConfig(), 17)
		if err != nil {
			benchCorpus.err = err
			return
		}
		benchCorpus.ds = ds
		benchCorpus.suite = suite
	})
	if benchCorpus.err != nil {
		b.Fatal(benchCorpus.err)
	}
	return benchCorpus.ds, benchCorpus.suite
}

func BenchmarkFigure01AvgFlowSizeCDF(b *testing.B) {
	_, suite := corpus(b)
	for i := 0; i < b.N; i++ {
		cdfs, err := suite.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(cdfs.Trader[len(cdfs.Trader)/2].X, "trader-median-bytes/flow")
			b.ReportMetric(cdfs.Storm[len(cdfs.Storm)/2].X, "storm-median-bytes/flow")
		}
	}
}

func BenchmarkFigure02NewIPFraction(b *testing.B) {
	_, suite := corpus(b)
	for i := 0; i < b.N; i++ {
		r, err := suite.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(r.Trader.NewFraction) > 0 && len(r.Storm.NewFraction) > 0 {
			b.ReportMetric(r.Trader.NewFraction[len(r.Trader.NewFraction)-1], "trader-new-fraction")
			b.ReportMetric(r.Storm.NewFraction[len(r.Storm.NewFraction)-1], "storm-new-fraction")
		}
	}
}

func BenchmarkFigure03Interstitial(b *testing.B) {
	_, suite := corpus(b)
	for i := 0; i < b.N; i++ {
		panels, err := suite.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(panels)), "panels")
		}
	}
}

func BenchmarkFigure05FailedConnCDF(b *testing.B) {
	_, suite := corpus(b)
	for i := 0; i < b.N; i++ {
		cdfs, err := suite.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(cdfs.CMU[len(cdfs.CMU)/2].X, "cmu-median-failed-pct")
			b.ReportMetric(cdfs.Nugache[len(cdfs.Nugache)/2].X, "nugache-median-failed-pct")
		}
	}
}

func BenchmarkFigure06VolumeROC(b *testing.B) {
	_, suite := corpus(b)
	for i := 0; i < b.N; i++ {
		points, err := suite.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			mid := points[len(points)/2] // 50th percentile point
			b.ReportMetric(mid.Storm.TPR(), "storm-tpr@50")
			b.ReportMetric(mid.FPR, "fpr@50")
		}
	}
}

func BenchmarkFigure07ChurnROC(b *testing.B) {
	_, suite := corpus(b)
	for i := 0; i < b.N; i++ {
		points, err := suite.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			mid := points[len(points)/2]
			b.ReportMetric(mid.Storm.TPR(), "storm-tpr@50")
			b.ReportMetric(mid.FPR, "fpr@50")
		}
	}
}

func BenchmarkFigure08HMROC(b *testing.B) {
	_, suite := corpus(b)
	for i := 0; i < b.N; i++ {
		points, err := suite.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			mid := points[len(points)/2]
			b.ReportMetric(mid.Storm.TPR(), "storm-tpr@50")
			b.ReportMetric(mid.FPR, "fpr@50")
		}
	}
}

func BenchmarkFigure09Pipeline(b *testing.B) {
	_, suite := corpus(b)
	for i := 0; i < b.N; i++ {
		r, err := suite.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.StormTPR, "storm-tpr")
			b.ReportMetric(r.NugacheTPR, "nugache-tpr")
			b.ReportMetric(r.FPRate, "fp-rate")
		}
	}
}

func BenchmarkFigure10NugacheFlows(b *testing.B) {
	_, suite := corpus(b)
	for i := 0; i < b.N; i++ {
		r, err := suite.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			if pts := r.Stages["hm"]; len(pts) > 0 {
				b.ReportMetric(pts[len(pts)/2].X, "surviving-median-flows")
			}
		}
	}
}

func BenchmarkFigure11EvasionThresholds(b *testing.B) {
	_, suite := corpus(b)
	for i := 0; i < b.N; i++ {
		days, err := suite.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(days) > 0 {
			b.ReportMetric(days[0].StormVolFactor, "storm-vol-factor")
			b.ReportMetric(days[0].NugacheVolFactor, "nugache-vol-factor")
		}
	}
}

func BenchmarkFigure12JitterEvasion(b *testing.B) {
	_, suite := corpus(b)
	// A reduced sweep keeps the bench affordable; cmd/experiments runs
	// the full §VI range.
	sweep := []time.Duration{30 * time.Second, 10 * time.Minute, time.Hour}
	for i := 0; i < b.N; i++ {
		points, err := suite.Figure12(sweep, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(points[0].StormTPR, "storm-tpr@30s")
			b.ReportMetric(points[len(points)-1].StormTPR, "storm-tpr@1h")
		}
	}
}

// BenchmarkFindPlotters measures the core pipeline itself on one overlaid
// day — the per-window cost an operator would pay.
func BenchmarkFindPlotters(b *testing.B) {
	_, suite := corpus(b)
	day, err := suite.Day(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := day.Analysis.FindPlotters(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizeDay measures corpus generation throughput.
func BenchmarkSynthesizeDay(b *testing.B) {
	cfg := plotters.DefaultDayConfig(time.Date(2007, time.November, 5, 0, 0, 0, 0, time.UTC), 9)
	cfg.CampusHosts = 100
	cfg.Gnutella, cfg.EMule, cfg.BitTorrent = 3, 3, 5
	cfg.PeerNetworkNodes = 800
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		day, err := plotters.GenerateDay(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(day.Records)), "records")
	}
}

// hmBenchRecords synthesizes n hosts for the θ_hm benchmark: bot
// families sharing base timers with multiplicative jitter, so every host
// clears MinInterstitialSamples and produces a well-populated log-scale
// histogram (realistically sized EMD signatures, not two-bin spikes).
// Family timers are geometrically spaced (5s·1.15^f, f < 37 — seconds
// to tens of minutes), matching the paper's threat model of distinct
// bot binaries on distinct timers: families are equidistant on the
// log-time axis the pipeline clusters on, instead of smearing into a
// continuum at the top of a linear range.
func hmBenchRecords(n int) []plotters.Record {
	rng := rand.New(rand.NewSource(123))
	start := time.Date(2007, time.November, 5, 0, 0, 0, 0, time.UTC)
	const flowsPerHost = 130
	records := make([]plotters.Record, 0, n*flowsPerHost)
	for i := 0; i < n; i++ {
		base := 5 * math.Pow(1.15, float64(i%37)) * float64(time.Second)
		at := start
		src := plotters.IP(0x80020000 + uint32(i))
		for j := 0; j < flowsPerHost; j++ {
			records = append(records, plotters.Record{
				Src: src, Dst: plotters.IP(0x08000000 + uint32(i*7+j%5)),
				SrcPort: 40000, DstPort: 80, Proto: plotters.TCP,
				Start: at, End: at.Add(time.Second),
				SrcPkts: 2, DstPkts: 2, SrcBytes: 200, DstBytes: 400,
				State: plotters.StateEstablished,
			})
			gap := base * math.Exp(rng.NormFloat64()*0.35)
			at = at.Add(time.Duration(gap))
		}
	}
	return records
}

// BenchmarkHMTest measures θ_hm — the pipeline's dominant cost — at
// n ∈ {64, 256, 1024} clusterable hosts, sequentially (parallelism=1)
// and with one worker per CPU (parallelism=0). The parallel result is
// bit-identical to the sequential one (see
// core.TestHMTestParallelMatchesSequential); only wall-clock differs.
// The metered variants attach a metrics registry, pinning the cost of
// instrumentation on the pipeline's hottest path (it must stay within
// noise: everything is recorded per stage or per worker, never per pair).
// The pruned variants enable the layered pruning engine (auto-calibrated
// cut); their results are likewise bit-identical to the exhaustive runs
// (see TestFindPlottersPrunedGolden), and CI's bench-gate compares them
// against both the merge-base and the same-n exhaustive timing.
func BenchmarkHMTest(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		records := hmBenchRecords(n)
		for _, mode := range []struct {
			name        string
			parallelism int
			metrics     bool
			prune       bool
		}{
			{"seq", 1, false, false}, {"par", 0, false, false},
			{"seq-metered", 1, true, false}, {"par-metered", 0, true, false},
			{"seq-pruned", 1, false, true}, {"par-pruned", 0, false, true},
		} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				cfg := plotters.DefaultConfig()
				cfg.MinInterstitialSamples = 100
				cfg.Parallelism = mode.parallelism
				cfg.HMPrune = mode.prune
				if mode.metrics {
					cfg.Metrics = plotters.NewMetrics()
				}
				a, err := plotters.NewAnalysis(records, nil, cfg)
				if err != nil {
					b.Fatal(err)
				}
				hosts := a.Hosts()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := a.HMTest(hosts, cfg.HMPercentile)
					if err != nil {
						b.Fatal(err)
					}
					if res.Clustered != n {
						b.Fatalf("clustered %d of %d hosts", res.Clustered, n)
					}
					if i == b.N-1 {
						pairs := float64(n) * float64(n-1) / 2
						b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
					}
				}
			})
		}
	}
}

// BenchmarkHMTestPrunedLarge runs θ_hm at the scales where pruning is
// the difference between feasible and not — n ∈ {4096, 16384}
// clusterable hosts, pruned path only (the exhaustive path at n=16384
// would evaluate 134M exact EMDs; CI caps exhaustive benches at
// n=1024). Alongside pairs/s it reports the engine's own accounting:
// exact-frac is the fraction of pairs that paid an exact EMD
// evaluation (the ≤0.10 acceptance ratio at n=4096, calibration
// included), pruned-frac the fraction skipped by the prefilter and
// pivot layers.
func BenchmarkHMTestPrunedLarge(b *testing.B) {
	for _, n := range []int{4096, 16384} {
		b.Run(fmt.Sprintf("n=%d/par-pruned", n), func(b *testing.B) {
			records := hmBenchRecords(n)
			cfg := plotters.DefaultConfig()
			cfg.MinInterstitialSamples = 100
			cfg.HMPrune = true
			reg := plotters.NewMetrics()
			cfg.Metrics = reg
			a, err := plotters.NewAnalysis(records, nil, cfg)
			if err != nil {
				b.Fatal(err)
			}
			hosts := a.Hosts()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := a.HMTest(hosts, cfg.HMPercentile)
				if err != nil {
					b.Fatal(err)
				}
				if res.Clustered != n {
					b.Fatalf("clustered %d of %d hosts", res.Clustered, n)
				}
			}
			b.StopTimer()
			snap := reg.TakeSnapshot()
			total := float64(snap.Counters["distmatrix/pairs_total"])
			if total > 0 {
				exact := float64(snap.Counters["distmatrix/pairs"] +
					snap.Counters["pipeline/hm/calibration_pairs"])
				pruned := float64(snap.Counters["distmatrix/pairs_pruned_bound"] +
					snap.Counters["distmatrix/pairs_pruned_pivot"])
				b.ReportMetric(exact/total, "exact-frac")
				b.ReportMetric(pruned/total, "pruned-frac")
			}
			pairs := float64(n) * float64(n-1) / 2
			b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}
