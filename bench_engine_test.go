// Benchmarks for the continuous detection engine: concurrent ingest
// into the sharded feature store, and the window seal → detect → rotate
// cycle the engine runs at every boundary.
package plotters_test

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"plotters"
)

// engineBenchRecords reuses the θ_hm benchmark corpus, start-ordered as
// a stream, with a deterministic spread of failed connections so the
// reduction's median keeps a realistic fraction of hosts.
func engineBenchRecords(n int) []plotters.Record {
	records := hmBenchRecords(n)
	for i := range records {
		if (i+int(records[i].Src))%3 == 0 {
			records[i].State = plotters.StateFailed
			records[i].SrcBytes, records[i].DstBytes = 60, 0
		}
	}
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].Start.Before(records[j].Start)
	})
	return records
}

// BenchmarkShardedIngest measures concurrent feature accumulation at 1,
// 4, and NumCPU shards: GOMAXPROCS goroutines stripe one start-ordered
// stream round-robin into the store, then drain it. A single shard
// serializes every Add behind one lock; more shards spread the
// contention by source-address hash.
func BenchmarkShardedIngest(b *testing.B) {
	records := engineBenchRecords(512)
	span := records[len(records)-1].Start.Sub(records[0].Start)
	workers := runtime.GOMAXPROCS(0)
	for _, shards := range []int{1, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				se := plotters.NewShardedExtractorSkew(plotters.FeatureOptions{}, shards, span+time.Hour)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for j := w; j < len(records); j += workers {
							if err := se.Add(&records[j]); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				se.Drain()
			}
			b.ReportMetric(float64(len(records)), "records/op")
		})
	}
}

// BenchmarkWindowAdvance measures the engine's per-boundary cycle —
// seal the pane, run the full pipeline over its features, rotate the
// store — by streaming a fixed corpus through tumbling 15-minute
// windows.
func BenchmarkWindowAdvance(b *testing.B) {
	records := engineBenchRecords(256)
	cfg := plotters.DefaultConfig()
	cfg.MinInterstitialSamples = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		windows := 0
		eng, err := plotters.NewWindowedDetector(plotters.EngineConfig{
			Window: 15 * time.Minute,
			Origin: records[0].Start,
			Core:   cfg,
		}, func(*plotters.WindowResult) error { windows++; return nil })
		if err != nil {
			b.Fatal(err)
		}
		for j := range records {
			if err := eng.Add(&records[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Flush(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(windows), "windows/op")
	}
}
