// Pruned-path regression tests: the layered EMD pruning engine behind
// Config.HMPrune must reproduce the exhaustive pipeline bit for bit on
// the canonical evaluation corpus — same golden file, no separate
// pruned golden — while demonstrably skipping exact EMD evaluations.
package plotters_test

import (
	"reflect"
	"testing"

	"plotters"
)

// TestFindPlottersPrunedGolden runs the full pipeline with HMPrune on
// (auto-calibrated cut: the corpus' clusterable hosts fit under the
// calibration sample cap, so the cut is twice the true widest surviving
// diameter and the equivalence theorem applies directly) and checks it
// against the same pinned golden outcome as the exhaustive run, plus
// in-process equality with an exhaustive run of the same overlay. The
// engine's counters must show real pruning; anything else means the
// prefilter silently degraded to exhaustive.
func TestFindPlottersPrunedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus synthesis takes ~15s; skipped in -short mode")
	}
	ds := goldenDataset(t)

	exhaustive := goldenDay(t, ds, plotters.DefaultConfig())
	want, err := exhaustive.Analysis.FindPlotters()
	if err != nil {
		t.Fatal(err)
	}

	cfg := plotters.DefaultConfig()
	cfg.HMPrune = true
	reg := plotters.NewMetrics()
	cfg.Metrics = reg
	day := goldenDay(t, ds, cfg)
	got, err := day.Analysis.FindPlotters()
	if err != nil {
		t.Fatal(err)
	}

	compareGolden(t, resultToGolden(day, got), loadGolden(t))
	if !reflect.DeepEqual(got.HM, want.HM) {
		t.Errorf("pruned θ_hm diverged from exhaustive:\n got: %+v\nwant: %+v", got.HM, want.HM)
	}
	if !reflect.DeepEqual(got.Suspects, want.Suspects) {
		t.Errorf("pruned suspects = %v, want %v", got.Suspects.Sorted(), want.Suspects.Sorted())
	}

	snap := reg.TakeSnapshot()
	total := snap.Counters["distmatrix/pairs_total"]
	exact := snap.Counters["distmatrix/pairs"]
	pruned := snap.Counters["distmatrix/pairs_pruned_bound"] + snap.Counters["distmatrix/pairs_pruned_pivot"]
	if total == 0 {
		t.Fatal("pairs_total = 0: pruning engine never engaged")
	}
	if pruned == 0 {
		t.Error("no pairs pruned on the evaluation corpus")
	}
	// The gated main matrix partitions exactly: every pair is either
	// evaluated exactly or pruned by a layer. The calibration mini-matrix
	// is accounted separately (pipeline/hm/calibration_pairs) — honest
	// accounting, since calibration is part of the pruned path's cost;
	// the ≤10% acceptance ratio is measured at bench scale (n ≥ 4096),
	// where that fixed cost amortizes.
	if exact+pruned != total {
		t.Errorf("accounting: exact(%d) + pruned(%d) != gated total(%d)", exact, pruned, total)
	}
	if calib := snap.Counters["pipeline/hm/calibration_pairs"]; calib == 0 {
		t.Error("calibration_pairs = 0: auto-calibration never ran its mini-matrix")
	}
	if gauge := snap.Gauges["pipeline/hm/cut_microemd"]; gauge <= 0 {
		t.Errorf("cut_microemd gauge = %d, want > 0", gauge)
	}
}
